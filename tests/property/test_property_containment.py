"""Property-based checks of containment, minimization and canonical forms."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.query.containment import (
    canonical_form,
    canonical_rename,
    equivalent,
    is_contained_in,
    is_isomorphic,
    minimize,
)
from repro.query.cq import ConjunctiveQuery, Variable

from tests.property import strategies as us

COMMON = settings(
    max_examples=80,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def shuffled_and_renamed(query: ConjunctiveQuery, seed: int) -> ConjunctiveQuery:
    """A syntactically different but isomorphic copy."""
    rng = random.Random(seed)
    variables = sorted(query.variables(), key=lambda v: v.name)
    fresh = [Variable(f"R{i}") for i in range(len(variables))]
    rng.shuffle(fresh)
    mapping = dict(zip(variables, fresh))
    renamed = query.substitute(mapping)
    atoms = list(renamed.atoms)
    rng.shuffle(atoms)
    return ConjunctiveQuery(renamed.head, tuple(atoms), name=query.name)


@COMMON
@given(query=us.queries(), seed=st.integers(0, 10_000))
def test_canonical_form_invariant_under_isomorphism(query, seed):
    other = shuffled_and_renamed(query, seed)
    assert canonical_form(query) == canonical_form(other)
    assert is_isomorphic(query, other, match_heads=True)


@COMMON
@given(query=us.queries(), seed=st.integers(0, 10_000))
def test_canonical_forms_agree_iff_isomorphic(query, seed):
    other = shuffled_and_renamed(query, seed)
    assert (canonical_form(query) == canonical_form(other)) == is_isomorphic(
        query, other, match_heads=True
    )


@COMMON
@given(query=us.queries())
def test_minimize_is_equivalent_and_idempotent(query):
    minimized = minimize(query)
    assert equivalent(query, minimized)
    assert len(minimize(minimized)) == len(minimized)
    assert len(minimized) <= len(query)


@COMMON
@given(query=us.queries())
def test_containment_is_reflexive(query):
    assert is_contained_in(query, query)


@COMMON
@given(q1=us.queries(max_atoms=2), q2=us.queries(max_atoms=2))
def test_containment_is_antisymmetric_up_to_equivalence(q1, q2):
    if is_contained_in(q1, q2) and is_contained_in(q2, q1):
        assert equivalent(q1, q2)


@COMMON
@given(query=us.queries())
def test_canonical_rename_roundtrip(query):
    renamed = canonical_rename(query)
    assert canonical_form(renamed) == canonical_form(query)
    assert equivalent(renamed, query)


@COMMON
@given(query=us.queries())
def test_adding_an_atom_tightens(query):
    """q ∧ extra ⊆ q (monotonicity of conjunction)."""
    extra = query.atoms[0]
    bigger = ConjunctiveQuery(query.head, query.atoms + (extra,), name="b")
    assert is_contained_in(bigger, query)
    assert is_contained_in(query, bigger)  # duplicate atom: still equivalent
