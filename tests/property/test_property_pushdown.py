"""Answer-set parity of the whole-plan SQL pushdown route.

``evaluate(engine="auto")`` on a SQLite-backed store runs eligible
queries as one pushed-down SQL statement; these properties pin it to
the interpreted engines and the seed's greedy evaluator across the
matrix the route must survive: random conjunctive queries (self-joins,
Cartesian products, constants the data never mentions), the rule-4
``non_literal`` restriction, fresh stores versus stores mutated after
the first evaluation (the prepared-SQL cache must invalidate), and
every batch-size configuration.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import SQL_PUSHDOWN, choose_engine, plan_pushdown
from repro.query.evaluation import evaluate, evaluate_greedy

from tests.property.strategies import data_triples, queries, stores


@pytest.fixture
def fig8_workload():
    from repro.query.parser import parse_queries

    return parse_queries(
        """
        q1(X, Z) :- t(X, <http://u/p0>, Y), t(Y, <http://u/p1>, Z)
        q2(X) :- t(X, rdf:type, <http://u/c0>), t(X, <http://u/p0>, Y)
        q3(X, Y) :- t(X, <http://u/p0>, Y)
        """
    )


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_pushdown_matches_greedy_and_interpreted(data):
    store = data.draw(stores(backend="sqlite"), label="store")
    query = data.draw(queries(), label="query")
    try:
        expected = evaluate_greedy(query, store)
        # auto on sqlite = pushdown whenever the shape is eligible ...
        assert evaluate(query, store) == expected
        # ... and the interpreted ablation baseline agrees.
        assert evaluate(query, store, pushdown=False) == expected
    finally:
        store.backend.close()


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_pushdown_parity_with_non_literal_restriction(data):
    store = data.draw(stores(backend="sqlite"), label="store")
    query = data.draw(queries(), label="query")
    try:
        body_vars = sorted(query.variables(), key=lambda v: v.name)
        if body_vars:
            restricted = data.draw(
                st.sets(st.sampled_from(body_vars)), label="non_literal"
            )
            query = query.with_non_literal(restricted)
        assert evaluate(query, store) == evaluate_greedy(query, store)
    finally:
        store.backend.close()


@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_pushdown_parity_survives_mutation(data):
    """Evaluate, mutate (adds and removes), evaluate again: the cached
    SQL plans of the first round must not leak into the second."""
    store = data.draw(stores(backend="sqlite"), label="store")
    query = data.draw(queries(), label="query")
    try:
        assert evaluate(query, store) == evaluate_greedy(query, store)
        stored = sorted(store, key=lambda t: (t.s.n3(), t.p.n3(), t.o.n3()))
        if stored:
            victims = data.draw(
                st.lists(st.sampled_from(stored), max_size=3, unique=True),
                label="removals",
            )
            for triple in victims:
                store.remove(triple)
        for triple in data.draw(data_triples(min_size=0, max_size=5),
                                label="additions"):
            store.add(triple)
        assert evaluate(query, store) == evaluate_greedy(query, store)
    finally:
        store.backend.close()


@settings(max_examples=25, deadline=None)
@given(data=st.data(), batch_size=st.sampled_from([None, 1, 7, 1024]))
def test_pushdown_gate_honors_batch_configuration(data, batch_size):
    """Every batch size agrees; ``None`` (tuple-at-a-time) never pushes
    down but must still match."""
    store = data.draw(stores(backend="sqlite"), label="store")
    query = data.draw(queries(), label="query")
    try:
        expected = evaluate_greedy(query, store)
        assert evaluate(query, store, batch_size=batch_size) == expected
    finally:
        store.backend.close()


def test_fig8_shapes_take_the_pushdown_route(fig8_workload):
    """The benchmark workload shapes all compile; parity on a populated
    store, fresh and after removals."""
    from hypothesis import find

    store = find(stores(backend="sqlite", min_size=20, max_size=25),
                 lambda s: len(s) >= 20)
    try:
        for query in fig8_workload:
            assert choose_engine(query, store) == SQL_PUSHDOWN
            assert plan_pushdown(query, store) is not None
            assert evaluate(query, store) == evaluate_greedy(query, store)
        for triple in list(store)[:5]:
            store.remove(triple)
        for query in fig8_workload:
            assert evaluate(query, store) == evaluate_greedy(query, store)
    finally:
        store.backend.close()
