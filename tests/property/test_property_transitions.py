"""Property-based soundness of the transitions: any random sequence of
applicable transitions preserves the answers of every workload query when
the rewritings are executed over materialized views."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.query.evaluation import evaluate
from repro.selection.costs import CostModel
from repro.selection.materialize import answer_query, materialize_views
from repro.selection.state import ViewNamer, initial_state
from repro.selection.transitions import TransitionEnumerator, TransitionKind

from tests.property import strategies as us

COMMON = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@COMMON
@given(
    store=us.stores(max_size=20),
    q1=us.connected_queries(max_atoms=3, allow_property_variable=False),
    q2=us.connected_queries(max_atoms=2, allow_property_variable=False),
    picks=st.lists(st.integers(0, 1_000), min_size=1, max_size=5),
)
def test_random_transition_sequences_are_sound(store, q1, q2, picks):
    queries = [q1.with_name("q1"), q2.with_name("q2")]
    namer = ViewNamer()
    enumerator = TransitionEnumerator(namer, vb_mode="overlapping")
    state = initial_state(queries, namer)
    for pick in picks:
        transitions = list(enumerator.transitions(state))
        if not transitions:
            break
        state = transitions[pick % len(transitions)].result
    extents = materialize_views(state, store)
    for query in queries:
        assert answer_query(state, query.name, extents) == evaluate(query, store)


@COMMON
@given(
    q1=us.connected_queries(max_atoms=3, allow_property_variable=False),
    picks=st.lists(st.integers(0, 1_000), min_size=1, max_size=4),
)
def test_transitions_preserve_state_invariants(q1, picks):
    """All views keep variable-only duplicate-free heads and stay free of
    Cartesian products (connected bodies)."""
    namer = ViewNamer()
    enumerator = TransitionEnumerator(namer, vb_mode="overlapping")
    state = initial_state([q1.with_name("q1")], namer)
    for pick in picks:
        transitions = list(enumerator.transitions(state))
        if not transitions:
            break
        state = transitions[pick % len(transitions)].result
        for view in state.views:
            assert view.is_connected(), f"Cartesian product in {view}"
            head_vars = set(view.head)
            assert len(head_vars) == len(view.head)


@COMMON
@given(
    store=us.stores(max_size=15),
    q1=us.connected_queries(max_atoms=2, allow_property_variable=False),
)
def test_vf_of_duplicated_query_is_sound(store, q1):
    """Fusing the views of two renamed copies of one query preserves both
    queries' answers (Definition 3.5 end-to-end)."""
    copy = q1.rename_apart(q1.variables()).with_name("q2")
    queries = [q1.with_name("q1"), copy]
    namer = ViewNamer()
    enumerator = TransitionEnumerator(namer)
    state = initial_state(queries, namer)
    pairs = enumerator.vf_candidates(state)
    assert pairs, "renamed copies must be fusable"
    fused = enumerator.apply_vf(state, *pairs[0]).result
    assert len(fused.views) == 1
    extents = materialize_views(fused, store)
    for query in queries:
        assert answer_query(fused, query.name, extents) == evaluate(query, store)


@COMMON
@given(q1=us.connected_queries(max_atoms=3, allow_property_variable=False))
def test_sc_increases_and_vf_never_increases_cost(q1):
    """The Section 3.3 'impact of transitions' claims, on random inputs."""
    namer = ViewNamer()
    enumerator = TransitionEnumerator(namer)
    model = CostModel(_fixed_stats())
    state = initial_state([q1.with_name("q1")], namer)
    base = model.total_cost(state)
    for transition in enumerator.transitions(state, [TransitionKind.SC]):
        assert model.total_cost(transition.result) >= base - 1e-9


def _fixed_stats():
    from repro.selection.statistics import FixedStatistics

    return FixedStatistics(total=10_000, selectivity=0.05)
