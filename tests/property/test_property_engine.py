"""Answer-set parity of every execution path (the engine's safety net).

The seed's greedy evaluator (`evaluate_greedy`), the unindexed full-scan
baseline (`evaluate_nested_loop`) and every join strategy of the unified
engine must agree on the answer set of any conjunctive query — including
self-join atoms like ``t(X, p, X)``, Cartesian products, and the rule-4
``non_literal`` restriction.

The whole matrix runs once per storage backend (``repro.storage``): the
backend swap must be invisible to every evaluator, so a memory-backed
and a SQLite-backed store loaded with the same triples answer every
query identically.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    ENGINES,
    FIXED_ENGINES,
    HYBRID,
    SQL_PUSHDOWN,
    choose_engine,
)
from repro.query.cq import Atom, ConjunctiveQuery, Variable
from repro.query.evaluation import (
    evaluate,
    evaluate_greedy,
    evaluate_nested_loop,
)
from repro.rdf.store import TripleStore
from repro.rdf.terms import Literal, URI
from repro.rdf.triples import Triple
from repro.storage import BACKENDS

from tests.property.strategies import queries, stores

X = Variable("X")

backends = pytest.mark.parametrize("backend", BACKENDS)


@backends
@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_all_engines_match_reference_evaluators(backend, data):
    store = data.draw(stores(backend=backend), label="store")
    query = data.draw(queries(), label="query")
    expected = evaluate_greedy(query, store)
    assert evaluate_nested_loop(query, store) == expected
    for engine in ENGINES:
        assert evaluate(query, store, engine=engine) == expected, engine


@backends
@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_cost_based_auto_matches_every_fixed_engine(backend, data):
    """The cost-based choice only moves speed, never the answer set.

    On a SQL-capable backend the auto route may be whole-plan SQL
    pushdown instead of a fixed join strategy; either way the answer
    set must match every interpreted engine.
    """
    store = data.draw(stores(backend=backend), label="store")
    query = data.draw(queries(), label="query")
    chosen = choose_engine(query, store)
    assert chosen in FIXED_ENGINES + (HYBRID, SQL_PUSHDOWN)
    if chosen == SQL_PUSHDOWN:
        assert store.backend.supports_sql_plans
    auto_answers = evaluate(query, store, engine="auto")
    for engine in FIXED_ENGINES:
        assert evaluate(query, store, engine=engine) == auto_answers, engine


@backends
@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_non_literal_restriction_parity(backend, data):
    store = data.draw(stores(backend=backend), label="store")
    query = data.draw(queries(), label="query")
    body_vars = sorted(query.variables(), key=lambda v: v.name)
    if body_vars:
        restricted = data.draw(
            st.sets(st.sampled_from(body_vars)), label="non_literal"
        )
        query = query.with_non_literal(restricted)
    expected = evaluate_greedy(query, store)
    assert evaluate_nested_loop(query, store) == expected
    for engine in ENGINES:
        assert evaluate(query, store, engine=engine) == expected, engine


@backends
@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_self_join_atom_parity(backend, data):
    # t(X, p, X) forces the intra-atom equality filter in every engine.
    store = data.draw(stores(backend=backend), label="store")
    prop = URI("http://u/p0")
    store.add(Triple(URI("http://u/e0"), prop, URI("http://u/e0")))
    query = ConjunctiveQuery((X,), (Atom(X, prop, X),))
    expected = evaluate_greedy(query, store)
    assert (URI("http://u/e0"),) in expected
    assert evaluate_nested_loop(query, store) == expected
    for engine in ENGINES:
        assert evaluate(query, store, engine=engine) == expected, engine


@backends
@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_cross_backend_answer_parity(backend, data):
    """A cross-backend copy answers every query exactly like the source.

    In particular ``copy(backend="memory")`` of a SQLite-backed store
    yields an equivalent memory-backed store (and vice versa).
    """
    store = data.draw(stores(backend=backend), label="store")
    query = data.draw(queries(), label="query")
    expected = evaluate(query, store, engine="auto")
    for target in BACKENDS:
        clone = store.copy(backend=target)
        assert set(clone) == set(store)
        assert evaluate(query, clone, engine="auto") == expected, target


@backends
def test_non_literal_never_binds_literals_deterministic(backend):
    store = TripleStore(backend=backend)
    prop = URI("http://u/p")
    store.add(Triple(URI("http://u/s"), prop, Literal("text")))
    store.add(Triple(URI("http://u/s"), prop, URI("http://u/o")))
    query = ConjunctiveQuery((X,), (Atom(URI("http://u/s"), prop, X),))
    restricted = query.with_non_literal([X])
    for engine in ENGINES:
        assert evaluate(query, store, engine=engine) == {
            (Literal("text"),),
            (URI("http://u/o"),),
        }
        assert evaluate(restricted, store, engine=engine) == {(URI("http://u/o"),)}
