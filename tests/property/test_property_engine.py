"""Answer-set parity of every execution path (the engine's safety net).

The seed's greedy evaluator (`evaluate_greedy`), the unindexed full-scan
baseline (`evaluate_nested_loop`) and every join strategy of the unified
engine must agree on the answer set of any conjunctive query — including
self-join atoms like ``t(X, p, X)``, Cartesian products, and the rule-4
``non_literal`` restriction.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import ENGINES, FIXED_ENGINES, HYBRID, choose_engine
from repro.query.cq import Atom, ConjunctiveQuery, Variable
from repro.query.evaluation import (
    evaluate,
    evaluate_greedy,
    evaluate_nested_loop,
)
from repro.rdf.store import TripleStore
from repro.rdf.terms import Literal, URI
from repro.rdf.triples import Triple

from tests.property.strategies import queries, stores

X = Variable("X")


@settings(max_examples=60, deadline=None)
@given(store=stores(), query=queries())
def test_all_engines_match_reference_evaluators(store, query):
    expected = evaluate_greedy(query, store)
    assert evaluate_nested_loop(query, store) == expected
    for engine in ENGINES:
        assert evaluate(query, store, engine=engine) == expected, engine


@settings(max_examples=60, deadline=None)
@given(store=stores(), query=queries())
def test_cost_based_auto_matches_every_fixed_engine(store, query):
    """The cost-based choice only moves speed, never the answer set."""
    chosen = choose_engine(query, store)
    assert chosen in FIXED_ENGINES + (HYBRID,)
    auto_answers = evaluate(query, store, engine="auto")
    for engine in FIXED_ENGINES:
        assert evaluate(query, store, engine=engine) == auto_answers, engine


@settings(max_examples=40, deadline=None)
@given(store=stores(), query=queries(), data=st.data())
def test_non_literal_restriction_parity(store, query, data):
    body_vars = sorted(query.variables(), key=lambda v: v.name)
    if body_vars:
        restricted = data.draw(
            st.sets(st.sampled_from(body_vars)), label="non_literal"
        )
        query = query.with_non_literal(restricted)
    expected = evaluate_greedy(query, store)
    assert evaluate_nested_loop(query, store) == expected
    for engine in ENGINES:
        assert evaluate(query, store, engine=engine) == expected, engine


@settings(max_examples=40, deadline=None)
@given(store=stores())
def test_self_join_atom_parity(store):
    # t(X, p, X) forces the intra-atom equality filter in every engine.
    prop = URI("http://u/p0")
    store.add(Triple(URI("http://u/e0"), prop, URI("http://u/e0")))
    query = ConjunctiveQuery((X,), (Atom(X, prop, X),))
    expected = evaluate_greedy(query, store)
    assert (URI("http://u/e0"),) in expected
    assert evaluate_nested_loop(query, store) == expected
    for engine in ENGINES:
        assert evaluate(query, store, engine=engine) == expected, engine


def test_non_literal_never_binds_literals_deterministic():
    store = TripleStore()
    prop = URI("http://u/p")
    store.add(Triple(URI("http://u/s"), prop, Literal("text")))
    store.add(Triple(URI("http://u/s"), prop, URI("http://u/o")))
    query = ConjunctiveQuery((X,), (Atom(URI("http://u/s"), prop, X),))
    restricted = query.with_non_literal([X])
    for engine in ENGINES:
        assert evaluate(query, store, engine=engine) == {
            (Literal("text"),),
            (URI("http://u/o"),),
        }
        assert evaluate(restricted, store, engine=engine) == {(URI("http://u/o"),)}
