"""Property-based contracts of the incremental search core.

(a) Incremental costing: along any random transition sequence, the
    :class:`CostDelta` breakdowns produced by
    :meth:`CostModel.transition_cost` equal a full recompute by a fresh
    cost model *exactly* (bitwise float equality — the memo layers are
    designed to be indistinguishable from recomputation).
(c) Parallel frontier evaluation: a search run with ``workers > 1``
    returns results identical to the serial run — same best state, same
    Figure-5 accounting, same cost trace.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.selection import search as search_module
from repro.selection.costs import CostModel, price_states
from repro.selection.search import (
    SearchBudget,
    exhaustive_stratified_search,
    greedy_stratified_search,
)
from repro.selection.state import ViewNamer, initial_state
from repro.selection.statistics import StoreStatistics, ZipfStatistics
from repro.selection.transitions import TransitionEnumerator

from tests.property import strategies as us

COMMON = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@COMMON
@given(
    store=us.stores(max_size=20),
    q1=us.connected_queries(max_atoms=3, allow_property_variable=False),
    q2=us.connected_queries(max_atoms=2, allow_property_variable=False),
    picks=st.lists(st.integers(0, 1_000), min_size=1, max_size=5),
)
def test_incremental_cost_deltas_match_full_recompute_oracle(store, q1, q2, picks):
    """(a) Chained incremental breakdowns == fresh-model recompute, exactly."""
    queries = [q1.with_name("q1"), q2.with_name("q2")]
    namer = ViewNamer()
    enumerator = TransitionEnumerator(namer, vb_mode="overlapping")
    statistics = StoreStatistics(store)
    model = CostModel(statistics)
    state = initial_state(queries, namer)
    breakdown = model.cost(state)
    assert breakdown == CostModel(statistics, incremental=False).cost(state)
    for pick in picks:
        transitions = list(enumerator.transitions(state))
        if not transitions:
            break
        transition = transitions[pick % len(transitions)]
        delta = model.transition_cost(breakdown, transition)
        # The full-recompute oracle: a fresh, memo-less model.
        oracle = CostModel(statistics, incremental=False).cost(transition.result)
        assert delta.breakdown == oracle  # bitwise — no approx
        # And a fresh *incremental* model agrees too (cold == warm).
        assert CostModel(statistics).cost(transition.result) == oracle
        state, breakdown = transition.result, delta.breakdown


@COMMON
@given(
    q1=us.connected_queries(max_atoms=3, allow_property_variable=False),
    picks=st.lists(st.integers(0, 1_000), min_size=1, max_size=4),
)
def test_repricing_is_bounded_by_the_state_delta(q1, picks):
    """(a) The incremental model re-prices at most the touched components."""
    namer = ViewNamer()
    enumerator = TransitionEnumerator(namer, vb_mode="overlapping")
    model = CostModel(ZipfStatistics(seed=11))
    state = initial_state([q1.with_name("q1")], namer)
    breakdown = model.cost(state)
    for pick in picks:
        transitions = list(enumerator.transitions(state))
        if not transitions:
            break
        transition = transitions[pick % len(transitions)]
        delta = model.transition_cost(breakdown, transition)
        assert delta.repriced_views <= len(transition.delta.added)
        assert delta.repriced_plans <= len(transition.delta.plan_changes)
        state, breakdown = transition.result, delta.breakdown


# ----------------------------------------------------------------------
# (c) Parallel frontier evaluation is invisible in the results
# ----------------------------------------------------------------------

PARALLEL_WORKLOAD = [
    "q1(X) :- t(X, hasPainted, starryNight)",
    "q2(X, Y) :- t(X, hasPainted, Y), t(X, rdf:type, painter)",
    "q3(A, B) :- t(A, hasPainted, B), t(B, rdf:type, painting)",
]


def _search_with_workers(museum_store, search, workers):
    from repro.query.parser import parse_query

    namer = ViewNamer()
    enumerator = TransitionEnumerator(namer, vb_mode="overlapping")
    model = CostModel(StoreStatistics(museum_store))
    state = initial_state([parse_query(q) for q in PARALLEL_WORKLOAD], namer)
    return search(
        state, model, enumerator, SearchBudget(max_states=400), workers=workers
    )


def test_parallel_frontier_matches_serial(museum_store, monkeypatch):
    """(c) workers=2 returns exactly the serial results for the
    exhaustive and greedy strategies."""
    monkeypatch.setattr(search_module, "MIN_PARALLEL_FRONTIER", 2)
    for search in (exhaustive_stratified_search, greedy_stratified_search):
        serial = _search_with_workers(museum_store, search, workers=1)
        parallel = _search_with_workers(museum_store, search, workers=2)
        assert parallel.best_state.key == serial.best_state.key
        assert parallel.best_cost == serial.best_cost  # bitwise
        assert (
            parallel.stats.created,
            parallel.stats.duplicates,
            parallel.stats.discarded,
            parallel.stats.explored,
            parallel.stats.transitions,
        ) == (
            serial.stats.created,
            serial.stats.duplicates,
            serial.stats.discarded,
            serial.stats.explored,
            serial.stats.transitions,
        )
        assert [cost for _, cost in parallel.cost_history] == [
            cost for _, cost in serial.cost_history
        ]


def test_price_states_matches_in_process_pricing(museum_store):
    """The worker task prices exactly like the parent's cost model."""
    from repro.query.parser import parse_query

    namer = ViewNamer()
    enumerator = TransitionEnumerator(namer, vb_mode="overlapping")
    model = CostModel(StoreStatistics(museum_store))
    state = initial_state([parse_query(q) for q in PARALLEL_WORKLOAD], namer)
    frontier = [t.result for t in enumerator.transitions(state)]
    import pickle

    shipped = pickle.loads(pickle.dumps(model))  # what a worker receives
    assert price_states(shipped, frontier) == [model.cost(s) for s in frontier]
