"""Parity of the batch-at-a-time execution paths (the batched engine's
safety net).

The batched operators must be invisible semantically: for any store,
any query, any batch size — including the degenerate size 1, a prime
size that never divides the row counts evenly, and the planner-derived
``"adaptive"`` sizes — in either batch layout (columnar
:class:`~repro.engine.columnar.ColumnBatch` streams or row lists), and
serial or parallel (partitioned hash joins, morsel-driven scans), the
engine returns exactly the answers of the tuple-at-a-time path and of
the seed's greedy evaluator. Rewriting plans over extents additionally
preserve the row *multiset* (duplicates and all) across batch sizes.

The matrix runs per storage backend: the SQLite backend serves batches
through ``fetchmany`` (and columnar batches through ``fetchmany``
transpose) and batched probes through single-statement
``IN (VALUES ...)`` queries, which must not change a single row.
"""

from collections import Counter

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.engine.operators as operators
import repro.engine.parallel as parallel
import repro.engine.planner as planner
from repro.engine import (
    ENGINES,
    ColumnBatch,
    PartitionedHashJoin,
    plan_query,
    run_plan,
)
from repro.query.algebra import Join, Project, Scan
from repro.query.cq import Atom, ConjunctiveQuery, Variable
from repro.query.evaluation import evaluate, evaluate_greedy
from repro.rdf.store import TripleStore
from repro.rdf.terms import URI
from repro.rdf.triples import Triple
from repro.storage import BACKENDS

from tests.property.strategies import ENTITIES, queries, stores

#: Batch sizes the parity matrix sweeps: degenerate, prime,
#: planner-derived per-operator sizes, and the engine default.
BATCH_SIZES = (1, 7, "adaptive", None)

#: Both batch layouts: the columnar default and the row-list ablation.
LAYOUTS = ("columnar", "row")

backends = pytest.mark.parametrize("backend", BACKENDS)


def _batch_size(value):
    """None stands for "the engine default" in the sweep."""
    return {} if value is None else {"batch_size": value}


@backends
@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_batched_answers_match_tuple_at_a_time(backend, data):
    store = data.draw(stores(backend=backend), label="store")
    query = data.draw(queries(), label="query")
    expected = evaluate_greedy(query, store)
    for engine in ENGINES:
        assert evaluate(query, store, engine=engine, batch_size=None) == expected
        for layout in LAYOUTS:
            for size in BATCH_SIZES:
                got = evaluate(
                    query, store, engine=engine, layout=layout,
                    **_batch_size(size),
                )
                assert got == expected, (engine, layout, size)


@backends
@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_batch_stream_is_well_formed(backend, data):
    """Batches are non-empty lists of ≤ size rows covering the output."""
    store = data.draw(stores(backend=backend), label="store")
    query = data.draw(queries(), label="query")
    size = data.draw(st.integers(1, 9), label="size")
    for engine in ENGINES:
        root = plan_query(query, store, engine=engine)
        rows = list(root)
        batched = []
        for batch in root.batches(size):
            assert isinstance(batch, list)
            assert 0 < len(batch) <= size
            batched.extend(batch)
        assert Counter(batched) == Counter(rows), engine


@backends
@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_column_batch_stream_is_well_formed(backend, data):
    """Columnar streams carry the same row multiset as ``__iter__``,
    with equal-length non-empty columns — and consuming them leaves the
    tuple-at-a-time iteration order untouched."""
    store = data.draw(stores(backend=backend), label="store")
    query = data.draw(queries(), label="query")
    size = data.draw(st.integers(1, 9), label="size")
    for engine in ENGINES:
        root = plan_query(query, store, engine=engine)
        rows_before = list(root)
        width = len(root.schema)
        transposed = []
        for cb in root.column_batches(size):
            assert isinstance(cb, ColumnBatch)
            assert len(cb.columns) == width
            assert len(cb) > 0
            for column in cb.columns:
                assert len(column) == len(cb)
            transposed.extend(cb.rows())
        assert Counter(transposed) == Counter(rows_before), engine
        assert list(root) == rows_before, engine


@backends
@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(data=st.data())
def test_morsel_parallel_scan_parity(backend, data, monkeypatch):
    """Morsel-driven scans move speed only: with the eligibility
    threshold forced to zero and tiny morsels, workers=2 answers are
    identical to serial in both layouts at every batch size."""
    store = data.draw(stores(backend=backend, min_size=4), label="store")
    query = data.draw(queries(), label="query")
    monkeypatch.setattr(planner, "MORSEL_PARALLEL_THRESHOLD", 0)
    monkeypatch.setattr(parallel, "MORSEL_SIZE", 16)
    expected = evaluate_greedy(query, store)
    for layout in LAYOUTS:
        for size in (1, "adaptive", None):
            got = evaluate(
                query, store, workers=2, layout=layout, pushdown=False,
                **_batch_size(size),
            )
            assert got == expected, (layout, size)
    # workers=1 never routes through the morsel dispatcher.
    assert evaluate(query, store, workers=1, pushdown=False) == expected


@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_rewriting_plan_multiset_parity_across_batch_sizes(data):
    """run_plan preserves the exact row multiset (and the seed's row
    order under the default engine) at every batch size."""
    size_l = data.draw(st.integers(0, 12), label="left rows")
    size_r = data.draw(st.integers(0, 12), label="right rows")
    pick = st.sampled_from(ENTITIES)
    extents = {
        "v1": [
            (data.draw(pick), data.draw(pick)) for _ in range(size_l)
        ],
        "v2": [
            (data.draw(pick), data.draw(pick)) for _ in range(size_r)
        ],
    }
    plan = Join(Scan("v1", ("x", "y")), Scan("v2", ("y", "z")))
    projected = Project(plan, ("x", "z"))
    for engine in ENGINES:
        reference = run_plan(plan, extents, engine=engine, batch_size=None)
        for size in (1, 7, 1024):
            rows = run_plan(plan, extents, engine=engine, batch_size=size)
            assert Counter(rows) == Counter(reference), (engine, size)
            if engine != "merge":
                # Non-sorting engines keep the seed's exact row order.
                assert rows == reference, (engine, size)
        for size in (1, 7, 1024):
            assert run_plan(projected, extents, engine=engine, batch_size=size) == (
                run_plan(projected, extents, engine=engine, batch_size=None)
            ), (engine, size)


@backends
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(data=st.data())
def test_parallel_partitioned_join_parity(backend, data, monkeypatch):
    """Workers and partitioning move speed only, never the answer set."""
    store = data.draw(stores(backend=backend, min_size=5), label="store")
    query = data.draw(queries(), label="query")
    monkeypatch.setattr(planner, "PARALLEL_ROW_THRESHOLD", 0)
    monkeypatch.setattr(operators, "MIN_PARALLEL_INPUT_ROWS", 0)
    expected = evaluate_greedy(query, store)
    for size in BATCH_SIZES:
        got = evaluate(
            query, store, engine="hash", workers=2, **_batch_size(size)
        )
        assert got == expected, size
    # Serial partitioned execution (workers=1 collapses to one task).
    assert evaluate(query, store, engine="hash", workers=1) == expected


@backends
def test_planner_partitions_only_above_threshold(backend, monkeypatch):
    """The cost model gates the partitioned join on estimated size."""
    store = TripleStore(backend=backend)
    p0, p1 = URI("http://u/p0"), URI("http://u/p1")
    for i in range(40):
        store.add(Triple(URI(f"http://u/e{i}"), p0, URI(f"http://u/f{i % 7}")))
        store.add(Triple(URI(f"http://u/f{i % 7}"), p1, URI(f"http://u/g{i % 3}")))
    X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
    query = ConjunctiveQuery((X, Z), (Atom(X, p0, Y), Atom(Y, p1, Z)))

    def has_partitioned(root):
        if isinstance(root, PartitionedHashJoin):
            return True
        return any(has_partitioned(child) for child in root._children())

    # Far below the default threshold: workers alone change nothing.
    assert not has_partitioned(plan_query(query, store, engine="hash", workers=4))
    # Forced threshold of zero: the same plan partitions.
    monkeypatch.setattr(planner, "PARALLEL_ROW_THRESHOLD", 0)
    store.add(Triple(URI("http://u/inv"), p0, URI("http://u/inv2")))  # flush cache
    root = plan_query(query, store, engine="hash", workers=4)
    assert has_partitioned(root)
    # Serial compilation never partitions, threshold or not.
    assert not has_partitioned(plan_query(query, store, engine="hash", workers=1))
    expected = evaluate_greedy(query, store)
    assert evaluate(query, store, engine="hash", workers=4) == expected


@backends
def test_batch_size_zero_selects_the_tuple_path(backend):
    """0 follows the CLI convention: tuple-at-a-time, never zero-row batches."""
    store = TripleStore(backend=backend)
    p = URI("http://u/p0")
    store.add(Triple(URI("http://u/e0"), p, URI("http://u/e1")))
    store.add(Triple(URI("http://u/e1"), p, URI("http://u/e2")))
    X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
    query = ConjunctiveQuery((X, Z), (Atom(X, p, Y), Atom(Y, p, Z)))
    expected = evaluate_greedy(query, store)
    assert expected  # non-degenerate: the join has an answer
    assert evaluate(query, store, batch_size=0) == expected
    assert evaluate(query, store, batch_size=None) == expected
    extents = {"v": [(1, 2), (1, 2)]}
    plan = Scan("v", ("x", "y"))
    assert run_plan(plan, extents, batch_size=0) == [(1, 2), (1, 2)]


def test_negative_batch_size_is_rejected():
    """A negative size would silently yield empty batches downstream."""
    store = TripleStore()
    store.add(Triple(URI("http://u/e0"), URI("http://u/p0"), URI("http://u/e1")))
    X = Variable("X")
    query = ConjunctiveQuery((X,), (Atom(X, URI("http://u/p0"), URI("http://u/e1")),))
    with pytest.raises(ValueError, match="batch_size must be positive"):
        evaluate(query, store, batch_size=-5)
    with pytest.raises(ValueError, match="batch_size must be positive"):
        run_plan(Scan("v", ("x",)), {"v": [(1,)]}, batch_size=-1)


def test_unknown_batch_size_string_is_rejected():
    """Only the ``"adaptive"`` sentinel is a legal string size."""
    store = TripleStore()
    store.add(Triple(URI("http://u/e0"), URI("http://u/p0"), URI("http://u/e1")))
    X = Variable("X")
    query = ConjunctiveQuery((X,), (Atom(X, URI("http://u/p0"), URI("http://u/e1")),))
    with pytest.raises(ValueError, match="batch_size"):
        evaluate(query, store, batch_size="huge")
    assert evaluate(query, store, batch_size="adaptive") == evaluate(query, store)


def test_unknown_layout_is_rejected():
    store = TripleStore()
    store.add(Triple(URI("http://u/e0"), URI("http://u/p0"), URI("http://u/e1")))
    X = Variable("X")
    query = ConjunctiveQuery((X,), (Atom(X, URI("http://u/p0"), URI("http://u/e1")),))
    with pytest.raises(ValueError, match="layout"):
        evaluate(query, store, layout="diagonal")
