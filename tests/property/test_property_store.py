"""Model-based property test: the indexed store vs a plain set of triples."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.query.evaluation import evaluate
from repro.rdf.store import TripleStore

from tests.property import strategies as us

COMMON = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@COMMON
@given(
    additions=us.data_triples(max_size=30),
    removal_picks=st.lists(st.integers(0, 100), max_size=10),
)
def test_store_matches_set_model(additions, removal_picks):
    """Adds and removes keep every index consistent with a model set."""
    store = TripleStore()
    model: set = set()
    for triple in additions:
        assert store.add(triple) == (triple not in model)
        model.add(triple)
    for pick in removal_picks:
        if not model:
            break
        victim = sorted(model, key=lambda t: t.n3())[pick % len(model)]
        assert store.remove(victim) is True
        model.discard(victim)
    assert set(store) == model
    assert len(store) == len(model)
    # Every single-position pattern count agrees with the model.
    subjects = {t.s for t in model}
    properties = {t.p for t in model}
    objects = {t.o for t in model}
    for s in subjects:
        assert store.count(s=s) == sum(1 for t in model if t.s == s)
    for p in properties:
        assert store.count(p=p) == sum(1 for t in model if t.p == p)
    for o in objects:
        assert store.count(o=o) == sum(1 for t in model if t.o == o)
    # Two-position patterns, sampled.
    for t in sorted(model, key=lambda t: t.n3())[:5]:
        assert store.count(s=t.s, p=t.p) == sum(
            1 for m in model if m.s == t.s and m.p == t.p
        )
        assert store.count(p=t.p, o=t.o) == sum(
            1 for m in model if m.p == t.p and m.o == t.o
        )
    # Column distincts.
    assert store.distinct_values("s") == len(subjects)
    assert store.distinct_values("p") == len(properties)
    assert store.distinct_values("o") == len(objects)


@COMMON
@given(store=us.stores(max_size=20), query=us.connected_queries(max_atoms=2))
def test_evaluation_matches_naive_join(store, query):
    """The index-backed evaluator agrees with a brute-force join."""
    answers = evaluate(query, store)
    brute = brute_force(query, store)
    assert answers == brute


def brute_force(query, store):
    """Nested-loop evaluation straight from the definition."""
    from repro.query.cq import Variable

    triples = list(store)
    results = set()

    def extend(index, binding):
        if index == len(query.atoms):
            results.add(
                tuple(
                    binding[t] if isinstance(t, Variable) else t
                    for t in query.head
                )
            )
            return
        atom = query.atoms[index]
        for triple in triples:
            new_binding = dict(binding)
            ok = True
            for term, value in zip(atom, triple):
                if isinstance(term, Variable):
                    if term in new_binding:
                        if new_binding[term] != value:
                            ok = False
                            break
                    else:
                        new_binding[term] = value
                elif term != value:
                    ok = False
                    break
            if ok:
                extend(index + 1, new_binding)

    extend(0, {})
    return results
