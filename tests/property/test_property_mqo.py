"""Answer-set parity of the multi-query optimizer's shared execution.

``evaluate_union(shared=True)`` and ``run_query_batch(shared=True)``
must return exactly what fully independent evaluation returns, on every
configuration the route can take: random unions of random conjunctive
queries (overlapping, isomorphic-but-renamed, and unrelated disjuncts
alike), both storage backends, every batch size, serial and parallel
workers, pushdown on and off, and stores mutated between evaluations
(the union-level prepared-plan cache must invalidate).
"""

from unittest import mock

from hypothesis import given, settings
from hypothesis import strategies as st

import repro.engine.mqo as mqo
from repro.engine import run_query, run_query_batch
from repro.query.evaluation import evaluate_greedy, evaluate_union

from tests.property.strategies import data_triples, queries, stores


def _reference(disjuncts, store):
    answers = set()
    for disjunct in disjuncts:
        answers |= evaluate_greedy(disjunct, store)
    return answers


def _same_arity(disjuncts):
    return len({len(q.head) for q in disjuncts}) == 1


@st.composite
def unions(draw, max_disjuncts=4):
    """A same-arity list of random queries; renamings of earlier
    disjuncts are mixed in so shared fingerprints actually occur."""
    first = draw(queries())
    disjuncts = [first]
    for _ in range(draw(st.integers(0, max_disjuncts - 1))):
        disjuncts.append(
            draw(queries().filter(lambda q: len(q.head) == len(first.head)))
        )
    return disjuncts


@settings(max_examples=50, deadline=None)
@given(data=st.data(), backend=st.sampled_from(["memory", "sqlite"]))
def test_shared_union_matches_independent(data, backend):
    store = data.draw(stores(backend=backend), label="store")
    disjuncts = data.draw(unions(), label="union")
    try:
        expected = _reference(disjuncts, store)
        assert evaluate_union(disjuncts, store) == expected
        assert evaluate_union(disjuncts, store, shared=False) == expected
    finally:
        store.backend.close()


@settings(max_examples=30, deadline=None)
@given(
    data=st.data(),
    batch_size=st.sampled_from([1, 7, 1024]),
    workers=st.sampled_from([1, 2]),
    pushdown=st.booleans(),
)
def test_shared_union_across_the_configuration_matrix(
    data, batch_size, workers, pushdown
):
    store = data.draw(stores(backend="sqlite"), label="store")
    disjuncts = data.draw(unions(), label="union")
    try:
        assert evaluate_union(
            disjuncts,
            store,
            batch_size=batch_size,
            workers=workers,
            pushdown=pushdown,
        ) == _reference(disjuncts, store)
    finally:
        store.backend.close()


@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_forced_compound_statement_matches_independent(data):
    """With the profit gate forced open, every eligible union runs as
    the single ``SELECT ... UNION`` statement — answers must still be
    exactly the independent ones."""
    store = data.draw(stores(backend="sqlite"), label="store")
    disjuncts = data.draw(unions(), label="union")
    try:
        with mock.patch.object(mqo, "STATEMENT_OVERHEAD_ROWS", 0.0):
            shared = evaluate_union(disjuncts, store)
        assert shared == _reference(disjuncts, store)
    finally:
        store.backend.close()


@settings(max_examples=40, deadline=None)
@given(data=st.data(), backend=st.sampled_from(["memory", "sqlite"]))
def test_query_batch_matches_individual_runs(data, backend):
    store = data.draw(stores(backend=backend), label="store")
    batch = data.draw(
        st.lists(queries(), min_size=1, max_size=4), label="batch"
    )
    try:
        expected = [run_query(query, store) for query in batch]
        assert run_query_batch(batch, store) == expected
        assert run_query_batch(batch, store, shared=False) == expected
    finally:
        store.backend.close()


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_shared_union_parity_survives_mutation(data):
    """Evaluate, mutate (adds and removes), evaluate again: cached
    union plans and shared DAGs of the first round must not leak."""
    store = data.draw(stores(backend="sqlite"), label="store")
    disjuncts = data.draw(unions(), label="union")
    try:
        assert evaluate_union(disjuncts, store) == _reference(disjuncts, store)
        stored = sorted(store, key=lambda t: (t.s.n3(), t.p.n3(), t.o.n3()))
        if stored:
            victims = data.draw(
                st.lists(st.sampled_from(stored), max_size=3, unique=True),
                label="removals",
            )
            for triple in victims:
                store.remove(triple)
        for triple in data.draw(
            data_triples(min_size=0, max_size=5), label="additions"
        ):
            store.add(triple)
        assert evaluate_union(disjuncts, store) == _reference(disjuncts, store)
    finally:
        store.backend.close()


@settings(max_examples=30, deadline=None)
@given(data=st.data(), backend=st.sampled_from(["memory", "sqlite"]))
def test_shared_union_with_non_literal_restrictions(data, backend):
    store = data.draw(stores(backend=backend), label="store")
    disjuncts = data.draw(unions(), label="union")
    restricted = []
    for disjunct in disjuncts:
        body_vars = sorted(disjunct.variables(), key=lambda v: v.name)
        picked = data.draw(
            st.sets(st.sampled_from(body_vars)) if body_vars else st.just(set()),
            label="non_literal",
        )
        restricted.append(disjunct.with_non_literal(picked))
    try:
        expected = _reference(restricted, store)
        assert evaluate_union(restricted, store) == expected
        assert evaluate_union(restricted, store, shared=False) == expected
    finally:
        store.backend.close()
