"""Property-based checks of the reformulation algorithm.

The central one is Theorem 4.2: for *any* database, schema, and query
over the small universe,

    evaluate(q, saturate(D, S)) == evaluate(Reformulate(q, S), D).
"""

from hypothesis import HealthCheck, given, settings

from repro.query.containment import is_isomorphic
from repro.query.evaluation import evaluate, evaluate_union
from repro.rdf.entailment import saturation_triples
from repro.rdf.store import TripleStore
from repro.reformulation.reformulate import reformulate, reformulation_bound

from tests.property import strategies as us

COMMON = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@COMMON
@given(store=us.stores(), schema=us.schemas(), query=us.queries())
def test_theorem_42_equivalence(store, schema, query):
    """Reformulation on the plain store == query on the saturated store."""
    saturated = TripleStore()
    for triple in saturation_triples(iter(store), schema):
        saturated.add(triple)
    union = reformulate(query, schema)
    assert evaluate_union(union, store) == evaluate(query, saturated)


@COMMON
@given(schema=us.schemas(), query=us.queries())
def test_original_query_is_a_disjunct(schema, query):
    union = reformulate(query, schema)
    assert any(is_isomorphic(query, cq, match_heads=True) for cq in union)


@COMMON
@given(schema=us.schemas(), query=us.queries())
def test_theorem_41_bound(schema, query):
    union = reformulate(query, schema)
    assert len(union) <= reformulation_bound(schema, query)


@COMMON
@given(schema=us.schemas(), query=us.queries())
def test_all_disjuncts_share_arity(schema, query):
    union = reformulate(query, schema)
    assert union.arity == len(query.head)


@COMMON
@given(store=us.stores(), schema=us.schemas(), query=us.queries())
def test_reformulation_only_adds_answers(store, schema, query):
    """The union is a superset of the plain evaluation (q ∈ ucq)."""
    union = reformulate(query, schema)
    assert evaluate(query, store) <= evaluate_union(union, store)


@COMMON
@given(schema=us.schemas(), query=us.queries())
def test_reformulation_is_deterministic(schema, query):
    u1 = reformulate(query, schema)
    u2 = reformulate(query, schema)
    # Fresh existential variables may differ in name; compare up to
    # isomorphism via pairwise matching.
    assert len(u1) == len(u2)
    for cq in u1:
        assert any(is_isomorphic(cq, other, match_heads=True) for other in u2)
