"""Metrics merged back from pool workers equal serial totals.

The fork pool (``repro.engine.parallel``) ships every task through
``instrumented_call`` when metrics are enabled: the worker records into
a fresh registry and the parent merges the returned dump. These
properties pin the contract — counters and histograms accumulated
across worker processes are exactly the counts a serial run of the same
work produces, for any chunking, and instrumentation never changes
answers (across backends and batch sizes).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.operators import ExtentScan, PartitionedHashJoin
from repro.engine.parallel import map_chunks
from repro.obs import metrics
from repro.query.evaluation import evaluate
from repro.storage import BACKENDS

from tests.property.strategies import queries, stores


@pytest.fixture(autouse=True)
def clean_registry():
    metrics.reset()
    yield
    metrics.disable()
    metrics.reset()


def _record_chunk(scale, chunk):
    """The work shipped to pool workers: counts and one histogram."""
    metrics.inc("prop.chunks")
    metrics.inc("prop.items", len(chunk))
    for value in chunk:
        metrics.observe("prop.value", float(value) * scale)
    return sum(chunk)


@settings(max_examples=10, deadline=None)
@given(
    values=st.lists(st.integers(0, 100), min_size=1, max_size=40),
    chunk_size=st.integers(1, 8),
)
def test_pool_merged_metrics_equal_serial_totals(values, chunk_size):
    chunks = [
        values[start : start + chunk_size]
        for start in range(0, len(values), chunk_size)
    ]

    metrics.reset()
    with metrics.enabled_registry():
        serial_results = [_record_chunk(2, chunk) for chunk in chunks]
    serial = metrics.registry().dump()

    metrics.reset()
    with metrics.enabled_registry():
        pool_results = map_chunks(_record_chunk, 2, chunks, workers=2)
    merged = metrics.registry().dump()

    assert pool_results == serial_results
    # The pool path adds its own dispatch counter on top of the task's.
    assert merged["counters"].pop("engine.parallel.tasks") == len(chunks)
    assert merged["counters"] == serial["counters"]
    ours = merged["histograms"]["prop.value"]
    theirs = serial["histograms"]["prop.value"]
    assert ours["count"] == theirs["count"]
    assert ours["total"] == pytest.approx(theirs["total"])
    assert ours["min"] == theirs["min"]
    assert ours["max"] == theirs["max"]
    assert sorted(ours["samples"]) == sorted(theirs["samples"])


@settings(max_examples=10, deadline=None)
@given(rows=st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)),
                     min_size=1, max_size=30))
def test_partitioned_join_worker_metrics_match_serial(rows):
    """The real pool consumer: PartitionedHashJoin's fan-out.

    ``min_parallel_rows=0`` forces pool dispatch on tiny inputs; the
    serial reference is the same operator with one worker. The joined
    rows and the partition-invariant counter (``rows_out`` — equal keys
    co-partition, so total join output is independent of partitioning)
    must agree; ``rows_in`` may only shrink on the pool path, which
    prunes partition pairs with an empty side before dispatch.
    """

    def join(workers):
        left = ExtentScan("l", list(rows), ("a", "b"))
        right = ExtentScan("r", list(rows), ("b", "c"))
        return PartitionedHashJoin(
            left, right, pairs=[(1, 0)], keep_right=[1],
            workers=workers, partitions=2, min_parallel_rows=0,
        )

    metrics.reset()
    with metrics.enabled_registry():
        serial_rows = sorted(join(1))
    serial = metrics.registry().dump()["counters"]

    metrics.reset()
    with metrics.enabled_registry():
        pool_rows = sorted(join(2))
    merged = metrics.registry().dump()["counters"]

    assert pool_rows == serial_rows
    assert merged.get("engine.parallel.join.rows_out", 0) == serial.get(
        "engine.parallel.join.rows_out", 0
    )
    assert merged.get("engine.parallel.join.rows_in", 0) <= serial.get(
        "engine.parallel.join.rows_in", 0
    )
    assert merged.get("engine.parallel.join.partitions", 0) <= 2
    if pool_rows:
        assert merged["engine.parallel.join.partitions"] >= 1


@settings(max_examples=5, deadline=None)
@given(data=st.data())
def test_served_answers_and_metrics_match_serial(data):
    """Server mode under randomized interleavings is observationally a
    permutation of single-process evaluation.

    For any store, workload, worker count and client count: (1) every
    served answer set equals serial ``run_query_batch`` on the same
    snapshot, regardless of which worker served it or in what order
    requests interleaved; and (2) the server's merged registry equals a
    serial replay of each worker's logged batch sequence — the counters
    workers shipped back reconcile exactly with single-process totals
    (histogram *counts* too; timings naturally differ).
    """
    import shutil
    import tempfile
    import threading

    from repro.engine import run_query_batch
    from repro.query.parser import parse_query
    from repro.rdf.store import TripleStore
    from repro.server import Server, ServerConfig
    from repro.server.pool import _answer_batch
    from repro.workload.generator import replay_schedule

    store = data.draw(stores(backend="memory"), label="store")
    texts = [
        str(data.draw(queries(max_atoms=2), label="query"))
        for _ in range(data.draw(st.integers(1, 3), label="n_queries"))
    ]
    workers = data.draw(st.integers(1, 3), label="workers")
    clients = data.draw(st.integers(1, 3), label="clients")
    schedule = replay_schedule(
        texts, repeats=2, seed=data.draw(st.integers(0, 99), label="seed")
    )

    directory = tempfile.mkdtemp(prefix="repro-prop-serve-")
    try:
        path = f"{directory}/kb.snapshot"
        store.save(path)

        serial_store = TripleStore.open(path, backend="sqlite",
                                        read_only=True)
        try:
            parsed = [parse_query(text) for text in texts]
            reference = dict(
                zip(texts, run_query_batch(parsed, serial_store))
            )
        finally:
            serial_store.close()

        config = ServerConfig(workers=workers, window_ms=0.0)
        with Server(path, config) as server:
            served: dict[int, list] = {}

            def drive(slot: int) -> None:
                with server.connect() as client:
                    answers = []
                    for text in schedule[slot::clients]:
                        result = client.query(text, timeout=60.0)
                        answers.append(
                            (text, frozenset(result.answers_or_raise()))
                        )
                    served[slot] = answers

            threads = [
                threading.Thread(target=drive, args=(slot,))
                for slot in range(clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120.0)
            assert not any(thread.is_alive() for thread in threads)
            merged = server.metrics_dump()
            batch_log = list(server.batch_log)

        # (1) Permutation invariance of the answers.
        assert len(served) == clients
        for answers in served.values():
            for text, answer in answers:
                assert answer == frozenset(reference[text])

        # (2) Merged worker metrics == serial replay of the batch log.
        serial_registry = metrics.MetricsRegistry()
        for index in range(workers):
            replay_store = TripleStore.open(
                path, backend="sqlite", read_only=True
            )
            try:
                parse_cache: dict = {}
                for worker_index, batch_texts in batch_log:
                    if worker_index != index:
                        continue
                    _, dump = metrics.collect(
                        _answer_batch, list(batch_texts), replay_store,
                        parse_cache, config.batch_size, config.engine,
                    )
                    serial_registry.merge(dump)
            finally:
                replay_store.close()
        worker_counters = {
            name: value
            for name, value in merged["counters"].items()
            if not name.startswith("server.")
        }
        assert worker_counters == serial_registry.dump()["counters"]
        for name, payload in merged["histograms"].items():
            if name.startswith("server."):
                continue
            assert (
                payload["count"] == serial_registry.histograms[name].count
            )
    finally:
        shutil.rmtree(directory, ignore_errors=True)


@pytest.mark.parametrize("backend", BACKENDS)
def test_batch_and_morsel_counters_are_guarded_per_query(backend, monkeypatch):
    """``engine.batch.*`` counts the head-image drive loop's hand-offs
    (one guarded ``inc`` per query, never per batch), and
    ``engine.morsel.*`` appears exactly when a scan ran morsel-parallel.
    """
    import repro.engine.parallel as parallel
    import repro.engine.planner as planner
    from repro.query.cq import Atom, ConjunctiveQuery, Variable
    from repro.rdf.store import TripleStore
    from repro.rdf.terms import URI
    from repro.rdf.triples import Triple

    store = TripleStore(backend=backend)
    p0, p1 = URI("http://u/p0"), URI("http://u/p1")
    for i in range(90):
        store.add(Triple(URI(f"http://u/e{i}"), p0, URI(f"http://u/f{i % 9}")))
        store.add(Triple(URI(f"http://u/f{i % 9}"), p1, URI(f"http://u/g{i % 4}")))
    X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
    query = ConjunctiveQuery((X, Z), (Atom(X, p0, Y), Atom(Y, p1, Z)))

    metrics.reset()
    with metrics.enabled_registry():
        answers = evaluate(query, store, engine="hash", pushdown=False)
    counters = dict(metrics.registry().counters)
    assert counters["engine.batch.count"] >= 1
    assert counters["engine.batch.rows"] >= len(answers)
    assert "engine.morsel.count" not in counters  # serial: no morsels

    # engine="hash" keeps both inputs as unsorted base scans — the
    # shape the morsel dispatcher applies to once the threshold drops.
    monkeypatch.setattr(planner, "MORSEL_PARALLEL_THRESHOLD", 0)
    monkeypatch.setattr(parallel, "MORSEL_SIZE", 16)
    metrics.reset()
    with metrics.enabled_registry():
        parallel_answers = evaluate(
            query, store, engine="hash", workers=2, pushdown=False
        )
    assert parallel_answers == answers
    counters = dict(metrics.registry().counters)
    assert counters.get("engine.morsel.count", 0) >= 1
    assert counters.get("engine.morsel.rows", 0) >= 1
    assert counters["engine.batch.count"] >= 1


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("batch_size", [2, 1024])
@settings(max_examples=10, deadline=None)
@given(data=st.data())
def test_instrumentation_never_changes_answers(backend, batch_size, data):
    store = data.draw(stores(backend=backend), label="store")
    query = data.draw(queries(), label="query")
    expected = evaluate(query, store, batch_size=batch_size, workers=2)
    metrics.reset()
    with metrics.enabled_registry():
        observed = evaluate(query, store, batch_size=batch_size, workers=2)
    assert observed == expected
    counters = metrics.registry().counters
    assert counters.get("engine.queries", 0) == 1
    histograms = metrics.registry().histograms
    assert histograms["engine.query_ms"].count == 1
