"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.rdf.ntriples import serialize_ntriples


@pytest.fixture()
def data_file(tmp_path, museum_store):
    path = tmp_path / "data.nt"
    path.write_text(serialize_ntriples(iter(museum_store)))
    return path


@pytest.fixture()
def schema_file(tmp_path, museum_schema):
    path = tmp_path / "schema.nt"
    path.write_text(serialize_ntriples(museum_schema.triples()))
    return path


@pytest.fixture()
def workload_file(tmp_path):
    path = tmp_path / "workload.dq"
    path.write_text(
        "q1(X) :- t(X, hasPainted, starryNight)\n"
        "q2(X, Y) :- t(X, hasPainted, Y), t(X, rdf:type, painter)\n"
    )
    return path


def run_cli(capsys, *argv) -> str:
    assert main(list(argv)) == 0
    return capsys.readouterr().out


def test_basic_run(capsys, data_file, workload_file):
    out = run_cli(
        capsys,
        "--data", str(data_file),
        "--queries", str(workload_file),
        "--time-limit", "2",
    )
    assert "recommended views:" in out
    assert "rewritings:" in out
    assert "q1 =" in out and "q2 =" in out
    assert "cost reduction" in out


def test_show_answers(capsys, data_file, workload_file):
    out = run_cli(
        capsys,
        "--data", str(data_file),
        "--queries", str(workload_file),
        "--time-limit", "2",
        "--show-answers",
    )
    assert "q1: 1 answers" in out


def test_entailment_with_schema_file(capsys, data_file, schema_file, tmp_path):
    workload = tmp_path / "w.dq"
    workload.write_text("q1(X) :- t(X, rdf:type, picture)\n")
    out = run_cli(
        capsys,
        "--data", str(data_file),
        "--queries", str(workload),
        "--schema", str(schema_file),
        "--entailment", "post_reformulation",
        "--time-limit", "2",
        "--show-answers",
    )
    assert "schema: 6 RDFS statements" in out
    # No explicit picture instances exist: every answer is implicit,
    # through the subclass rule and the range typing of hasPainted.
    assert "q1: 6 answers" in out


def test_explain_prints_plans_and_chosen_engine(capsys, data_file, workload_file):
    out = run_cli(
        capsys,
        "--data", str(data_file),
        "--queries", str(workload_file),
        "--time-limit", "2",
        "--explain",
    )
    assert "physical plans on the store [batch-size=1024 workers=1]:" in out
    assert "q2 [engine=" in out
    assert "partitioned-join=no" in out
    assert "IndexScan" in out


def test_explain_adaptive_batch_size_reports_hints(
    capsys, data_file, workload_file
):
    out = run_cli(
        capsys,
        "--data", str(data_file),
        "--queries", str(workload_file),
        "--time-limit", "2",
        "--explain",
        "--batch-size", "adaptive",
        "--engine", "hash",
        "--show-answers",
    )
    assert "physical plans on the store [batch-size=adaptive workers=1]:" in out
    assert "batch_hint=" in out
    assert "q1: 1 answers" in out  # adaptive sizes execute end to end


def test_batch_size_rejects_unknown_strings(data_file, workload_file, capsys):
    with pytest.raises(SystemExit):
        main([
            "--data", str(data_file),
            "--queries", str(workload_file),
            "--batch-size", "vectorized",
        ])
    capsys.readouterr()


def test_explain_honors_fixed_engine(capsys, data_file, workload_file):
    out = run_cli(
        capsys,
        "--data", str(data_file),
        "--queries", str(workload_file),
        "--time-limit", "2",
        "--explain",
        "--engine", "hash",
    )
    assert "q2 [engine=hash partitioned-join=no pushdown=no]" in out


def test_empty_workload_errors(capsys, data_file, tmp_path):
    workload = tmp_path / "empty.dq"
    workload.write_text("# nothing here\n")
    assert main(["--data", str(data_file), "--queries", str(workload)]) == 2


def test_strategy_choices(capsys, data_file, workload_file):
    out = run_cli(
        capsys,
        "--data", str(data_file),
        "--queries", str(workload_file),
        "--strategy", "descent",
        "--time-limit", "2",
    )
    assert "recommended views:" in out


class TestStorageBackends:
    def test_sqlite_backend_end_to_end(self, capsys, data_file, workload_file):
        out = run_cli(
            capsys,
            "--data", str(data_file),
            "--queries", str(workload_file),
            "--backend", "sqlite",
            "--time-limit", "2",
            "--show-answers",
        )
        assert "[sqlite backend]" in out
        assert "q1: 1 answers" in out

    def test_save_then_reopen_snapshot(self, capsys, data_file, workload_file,
                                       tmp_path):
        db = tmp_path / "store.db"
        out = run_cli(
            capsys,
            "--data", str(data_file),
            "--queries", str(workload_file),
            "--db", str(db),
            "--time-limit", "2",
        )
        assert f"saved store snapshot to {db}" in out
        assert db.is_file()
        # Second run: no --data, the snapshot serves the workload.
        for backend in ("sqlite", "memory"):
            out = run_cli(
                capsys,
                "--queries", str(workload_file),
                "--db", str(db),
                "--backend", backend,
                "--time-limit", "2",
                "--show-answers",
            )
            assert f"[{backend} backend]" in out
            assert "q1: 1 answers" in out

    def test_refuses_to_overwrite_existing_db(self, capsys, data_file,
                                              workload_file, tmp_path):
        db = tmp_path / "store.db"
        run_cli(
            capsys,
            "--data", str(data_file),
            "--queries", str(workload_file),
            "--backend", "sqlite",
            "--db", str(db),
            "--time-limit", "2",
        )
        # Refused with either backend: --db + --data on an existing
        # snapshot must never destroy it silently.
        for backend in ("sqlite", "memory"):
            assert main([
                "--data", str(data_file),
                "--queries", str(workload_file),
                "--backend", backend,
                "--db", str(db),
            ]) == 2
            assert "refusing to overwrite" in capsys.readouterr().err

    def test_neither_data_nor_db_errors(self, capsys, workload_file):
        assert main(["--queries", str(workload_file)]) == 2
        assert "either --data or --db" in capsys.readouterr().err

    def test_parse_failure_leaves_no_db_stub(self, capsys, workload_file,
                                             tmp_path):
        bad = tmp_path / "bad.nt"
        bad.write_text("<http://e/a> <http://e/p> missing-brackets .\n")
        db = tmp_path / "store.db"
        assert main([
            "--data", str(bad),
            "--queries", str(workload_file),
            "--backend", "sqlite",
            "--db", str(db),
        ]) == 2
        assert "cannot load" in capsys.readouterr().err
        assert not db.exists()

    def test_missing_data_file_leaves_no_db_stub(self, capsys, workload_file,
                                                 tmp_path):
        db = tmp_path / "store.db"
        assert main([
            "--data", str(tmp_path / "nope.nt"),
            "--queries", str(workload_file),
            "--backend", "sqlite",
            "--db", str(db),
        ]) == 2
        assert "cannot load" in capsys.readouterr().err
        assert not db.exists()

    def test_unwritable_db_path_reports_cleanly(self, capsys, data_file,
                                                workload_file, tmp_path):
        assert main([
            "--data", str(data_file),
            "--queries", str(workload_file),
            "--backend", "sqlite",
            "--db", str(tmp_path / "no" / "such" / "dir" / "x.db"),
        ]) == 2
        assert "cannot create database" in capsys.readouterr().err

    def test_corrupt_db_reports_cleanly(self, capsys, workload_file, tmp_path):
        db = tmp_path / "garbage.db"
        db.write_bytes(b"definitely not a sqlite database, lots of padding")
        assert main([
            "--queries", str(workload_file),
            "--backend", "sqlite",
            "--db", str(db),
        ]) == 2
        assert "cannot open" in capsys.readouterr().err


def test_uses_partitioned_join_walks_the_plan_tree():
    """--explain's partitioned-join detection finds the operator anywhere."""
    from repro.cli import _uses_partitioned_join
    from repro.engine import ExtentScan, HashJoin, PartitionedHashJoin

    left = ExtentScan("l", [(1, 2)], ("x", "y"))
    right = ExtentScan("r", [(2, 3)], ("y", "z"))
    plain = HashJoin(left, right, pairs=[(1, 0)], keep_right=[1])
    assert not _uses_partitioned_join(plain)
    partitioned = PartitionedHashJoin(left, right, pairs=[(1, 0)], keep_right=[1])
    assert _uses_partitioned_join(partitioned)
    nested = HashJoin(partitioned, right, pairs=[(2, 0)], keep_right=[1])
    assert _uses_partitioned_join(nested)


def test_search_budget_flags(capsys, data_file, workload_file):
    out = run_cli(
        capsys,
        "--data", str(data_file),
        "--queries", str(workload_file),
        "--search-budget-seconds", "2",
        "--search-budget-states", "50",
        "--strategy", "exstr",
    )
    assert "recommended views:" in out
    assert "cost reduction" in out


def test_explain_prints_search_accounting(capsys, data_file, workload_file):
    out = run_cli(
        capsys,
        "--data", str(data_file),
        "--queries", str(workload_file),
        "--time-limit", "2",
        "--strategy", "gstr",
        "--explain",
    )
    assert "search accounting [strategy=gstr" in out
    assert "created" in out
    assert "duplicates" in out
    assert "discarded" in out
    assert "explored" in out
    assert "states/sec" in out


def test_explain_reports_workers_and_batch_size(capsys, data_file, workload_file):
    out = run_cli(
        capsys,
        "--data", str(data_file),
        "--queries", str(workload_file),
        "--time-limit", "2",
        "--explain",
        "--workers", "2",
        "--batch-size", "0",
    )
    assert "[batch-size=tuple-at-a-time workers=2]" in out


def test_analyze_prints_annotated_plan(capsys, data_file, workload_file):
    out = run_cli(
        capsys,
        "--data", str(data_file),
        "--queries", str(workload_file),
        "--time-limit", "2",
        "--analyze",
    )
    assert "explain analyze on the store [batch-size=1024 workers=1]:" in out
    assert "q2 [engine=" in out
    assert "rows=" in out and "batches=" in out and "time_ms=" in out
    assert "est_rows=" in out
    assert "workload batch [queries=2" in out


def test_analyze_covers_the_pushdown_route(capsys, data_file, workload_file,
                                           tmp_path):
    db = tmp_path / "analyzed.db"
    out = run_cli(
        capsys,
        "--data", str(data_file),
        "--db", str(db),
        "--backend", "sqlite",
        "--queries", str(workload_file),
        "--time-limit", "2",
        "--analyze",
    )
    assert "pushdown=yes" in out
    assert "parity=yes" in out
    assert "SQLPushdown" in out
    assert "interpreted equivalent:" in out


def test_quiet_suppresses_status_but_keeps_results(capsys, data_file,
                                                   workload_file):
    out = run_cli(
        capsys,
        "--data", str(data_file),
        "--queries", str(workload_file),
        "--time-limit", "2",
        "-q",
    )
    assert "loaded" not in out
    assert "workload:" not in out
    assert "recommended views:" in out
    assert "cost reduction" in out


def test_log_level_warning_matches_quiet(capsys, data_file, workload_file):
    out = run_cli(
        capsys,
        "--data", str(data_file),
        "--queries", str(workload_file),
        "--time-limit", "2",
        "--log-level", "warning",
    )
    assert "loaded" not in out
    assert "recommended views:" in out


def test_slow_query_warnings_go_to_stderr(capsys, data_file, workload_file):
    assert main([
        "--data", str(data_file),
        "--queries", str(workload_file),
        "--time-limit", "2",
        "--slow-query-ms", "0.0001",
        "--show-answers",
    ]) == 0
    captured = capsys.readouterr()
    assert "slow query" in captured.err
    assert "recommended views:" in captured.out
    # The CLI restores the module flag for the next main() in-process.
    from repro.obs import metrics

    assert metrics.slow_query_ms is None


def test_metrics_json_writes_registry_snapshot(capsys, data_file,
                                               workload_file, tmp_path):
    import json

    path = tmp_path / "metrics.json"
    run_cli(
        capsys,
        "--data", str(data_file),
        "--queries", str(workload_file),
        "--time-limit", "2",
        "--metrics-json", str(path),
    )
    snapshot = json.loads(path.read_text())
    assert snapshot["counters"].get("selection.search.runs", 0) >= 1
    assert "selection.memo.view_hit" in snapshot["counters"]
    from repro.obs import metrics

    assert not metrics.enabled


def test_trace_writes_nested_spans(capsys, data_file, workload_file, tmp_path):
    import json

    path = tmp_path / "trace.jsonl"
    run_cli(
        capsys,
        "--data", str(data_file),
        "--queries", str(workload_file),
        "--time-limit", "2",
        "--trace", str(path),
    )
    events = [json.loads(line) for line in path.read_text().splitlines()]
    assert events
    names = {event["name"] for event in events}
    assert "selection.run_search" in names
    from repro.obs import tracing

    assert tracing.sink is None
