"""Unit tests for the metrics registry (repro.obs.metrics)."""

import json

import pytest

from repro.obs import metrics
from repro.obs.metrics import Histogram, MetricsRegistry


@pytest.fixture(autouse=True)
def clean_registry():
    metrics.reset()
    yield
    metrics.disable()
    metrics.reset()


def test_counters_gauges_histograms_roundtrip():
    registry = MetricsRegistry()
    registry.inc("a.hits")
    registry.inc("a.hits", 4)
    registry.gauge("a.size", 7)
    registry.observe("a.ms", 1.0)
    registry.observe("a.ms", 3.0)
    snapshot = registry.snapshot()
    assert snapshot["counters"] == {"a.hits": 5}
    assert snapshot["gauges"] == {"a.size": 7}
    summary = snapshot["histograms"]["a.ms"]
    assert summary["count"] == 2
    assert summary["sum"] == 4.0
    assert summary["min"] == 1.0 and summary["max"] == 3.0


def test_histogram_percentiles_are_order_statistics():
    histogram = Histogram()
    for value in range(100, 0, -1):  # insertion order must not matter
        histogram.observe(float(value))
    assert histogram.percentile(0.50) == 51.0
    assert histogram.percentile(0.95) == 96.0
    assert histogram.percentile(0.99) == 100.0


def test_histogram_decimation_keeps_exact_totals():
    histogram = Histogram()
    n = metrics._SAMPLE_LIMIT * 3
    for value in range(n):
        histogram.observe(float(value))
    assert histogram.count == n
    assert histogram.total == sum(float(v) for v in range(n))
    assert histogram.minimum == 0.0
    assert histogram.maximum == float(n - 1)
    assert len(histogram.samples) <= metrics._SAMPLE_LIMIT
    assert histogram.percentile(0.5) is not None


def test_merge_equals_serial_recording():
    serial = MetricsRegistry()
    parts = [MetricsRegistry() for _ in range(3)]
    for index, part in enumerate(parts):
        for value in range(index + 1, 10):
            serial.inc("m.count")
            serial.observe("m.ms", float(value))
            part.inc("m.count")
            part.observe("m.ms", float(value))
    merged = MetricsRegistry()
    for part in parts:
        merged.merge(part.dump())
    assert merged.counters == serial.counters
    ours, theirs = merged.histograms["m.ms"], serial.histograms["m.ms"]
    assert ours.count == theirs.count
    assert ours.total == theirs.total
    assert ours.minimum == theirs.minimum
    assert ours.maximum == theirs.maximum
    assert sorted(ours.samples) == sorted(theirs.samples)


def test_collect_isolates_and_restores_the_registry():
    metrics.enable()
    metrics.inc("outer.count")

    def task(x):
        metrics.inc("inner.count", x)
        return x * 2

    result, dump = metrics.collect(task, 21)
    assert result == 42
    assert dump["counters"] == {"inner.count": 21}
    # The outer registry never saw the inner counts, and vice versa.
    assert metrics.registry().counters == {"outer.count": 1}
    assert metrics.enabled


def test_collect_enables_metrics_inside_the_task_even_when_disabled():
    assert not metrics.enabled

    def task():
        assert metrics.enabled
        metrics.inc("inner.count")

    _, dump = metrics.collect(task)
    assert dump["counters"] == {"inner.count": 1}
    assert not metrics.enabled


def test_export_json_writes_a_parseable_snapshot(tmp_path):
    with metrics.enabled_registry():
        metrics.inc("engine.queries", 3)
        metrics.observe("engine.query_ms", 1.5)
    path = tmp_path / "metrics.json"
    text = metrics.export_json(path)
    assert json.loads(text)["counters"]["engine.queries"] == 3
    on_disk = json.loads(path.read_text())
    assert on_disk["histograms"]["engine.query_ms"]["count"] == 1


def test_timer_records_milliseconds():
    with metrics.enabled_registry():
        with metrics.timer("t.ms"):
            pass
    histogram = metrics.registry().histograms["t.ms"]
    assert histogram.count == 1
    assert histogram.total >= 0.0


def test_disabled_overhead_probe_runs_and_stays_disabled():
    nanoseconds = metrics.disabled_overhead_ns(iterations=10_000)
    assert nanoseconds > 0.0
    assert not metrics.enabled
    # The measurement itself must not record anything.
    assert "obs.overhead.probe" not in metrics.registry().counters
