"""Unit tests for tracing spans (repro.obs.tracing)."""

import io
import json

import pytest

from repro.obs import tracing


@pytest.fixture(autouse=True)
def no_sink():
    tracing.configure(None)
    yield
    tracing.configure(None)


def events(buffer: io.StringIO) -> list[dict]:
    return [json.loads(line) for line in buffer.getvalue().splitlines()]


def test_span_is_noop_without_a_sink():
    probe = tracing.span("anything", key="value")
    assert probe is tracing._NOOP
    with probe:
        pass


def test_spans_nest_via_parent_ids():
    buffer = io.StringIO()
    tracing.configure(buffer)
    with tracing.span("outer", query="q1"):
        with tracing.span("inner"):
            pass
        with tracing.span("inner"):
            pass
    outer = [e for e in events(buffer) if e["name"] == "outer"]
    inner = [e for e in events(buffer) if e["name"] == "inner"]
    assert len(outer) == 1 and len(inner) == 2
    assert outer[0]["parent_id"] is None
    assert all(e["parent_id"] == outer[0]["span_id"] for e in inner)
    assert outer[0]["attrs"] == {"query": "q1"}
    assert all(e["duration_ms"] >= 0 for e in events(buffer))


def test_non_json_attrs_are_stringified():
    buffer = io.StringIO()
    tracing.configure(buffer)
    with tracing.span("s", path=object()):
        pass
    (event,) = events(buffer)
    assert isinstance(event["attrs"]["path"], str)


def test_configure_resets_ids_per_trace():
    first = io.StringIO()
    tracing.configure(first)
    with tracing.span("a"):
        pass
    second = io.StringIO()
    tracing.configure(second)
    with tracing.span("b"):
        pass
    assert events(first)[0]["span_id"] == events(second)[0]["span_id"] == 1


def test_configure_with_a_path_writes_jsonl(tmp_path):
    path = tmp_path / "trace.jsonl"
    tracing.configure(path)
    with tracing.span("file.span"):
        pass
    tracing.configure(None)  # closes the owned handle
    lines = path.read_text().splitlines()
    assert len(lines) == 1
    assert json.loads(lines[0])["name"] == "file.span"
