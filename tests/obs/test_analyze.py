"""EXPLAIN ANALYZE correctness (repro.obs.analyze).

The analyzed execution must return exactly the answers the production
routes return, on both backends, and every per-operator annotation must
be internally consistent: rows_in equals the children's rows_out, the
header's answer count equals the real answer set, and estimator
predictions (``est_rows``) sit next to actuals on join steps.
"""

import pytest

from repro.engine import SQL_PUSHDOWN
from repro.obs.analyze import analyze_batch, analyze_query, analyze_union
from repro.query.evaluation import evaluate, evaluate_union
from repro.query.parser import parse_query


@pytest.fixture
def sqlite_museum(museum_store):
    store = museum_store.copy(backend="sqlite")
    yield store
    store.backend.close()


@pytest.fixture
def stores(museum_store, sqlite_museum):
    return {"memory": museum_store, "sqlite": sqlite_museum}


def _chain():
    return parse_query("qa(X, Z) :- t(X, isParentOf, Y), t(Y, hasPainted, Z)")


def _chain_typed():
    return parse_query(
        "qb(X, Z) :- t(X, isParentOf, Y), t(Y, hasPainted, Z), "
        "t(Z, rdf:type, painting)"
    )


@pytest.mark.parametrize("backend", ["memory", "sqlite"])
def test_analyze_matches_evaluate(backend, stores, q_painters):
    store = stores[backend]
    report = analyze_query(q_painters, store)
    assert report.answers == evaluate(q_painters, store)
    assert report.answer_count == len(report.answers)
    header = report.tree
    assert header.label == q_painters.name
    assert header.annotations["rows"] == report.answer_count


def test_pushdown_route_reports_parity_and_backend_plan(
    sqlite_museum, q_painters
):
    report = analyze_query(q_painters, sqlite_museum)
    assert report.route == SQL_PUSHDOWN
    assert report.tree.annotations["parity"] is True
    labels = [node.label for node in report.tree.walk()]
    assert "SQLPushdown" in labels
    assert "interpreted equivalent" in labels
    # The compiled statement's SQL rides along as detail lines.
    sql_node = next(n for n in report.tree.walk() if n.label == "SQLPushdown")
    assert any("SELECT" in line for line in sql_node.details)


@pytest.mark.parametrize("backend", ["memory", "sqlite"])
def test_rows_in_equals_child_rows_out(backend, stores, q_painters):
    store = stores[backend]
    report = analyze_query(q_painters, store, pushdown=False)
    checked = 0
    for node in report.tree.walk():
        if "rows_in" not in node.annotations:
            continue
        child_rows = sum(c.annotations.get("rows", 0) for c in node.children)
        assert node.annotations["rows_in"] == child_rows
        checked += 1
    assert checked >= 1  # q_painters has two join steps


@pytest.mark.parametrize("backend", ["memory", "sqlite"])
def test_joins_carry_estimates_next_to_actuals(backend, stores, q_painters):
    report = analyze_query(q_painters, stores[backend], pushdown=False)
    operators = [
        node
        for node in report.tree.walk()
        if not node.header and "rows" in node.annotations
    ]
    assert operators, "the interpreted tree must be annotated"
    root = operators[0]
    assert root.annotations["est_rows"] is not None
    assert root.annotations["batches"] >= 1
    assert root.annotations["time_ms"] >= 0


@pytest.mark.parametrize("backend", ["memory", "sqlite"])
def test_adaptive_sizes_report_as_batch_hints(backend, stores, q_painters):
    """``batch_size="adaptive"`` analyzes like any other size and every
    planner-sized operator reports the batch size it resolved to."""
    store = stores[backend]
    report = analyze_query(
        q_painters, store, batch_size="adaptive", pushdown=False
    )
    assert report.answers == evaluate(q_painters, store)
    hints = [
        node.annotations["batch_hint"]
        for node in report.tree.walk()
        if "batch_hint" in node.annotations
    ]
    assert hints, "scans and joins must carry their adaptive size"
    for hint in hints:
        assert 64 <= hint <= 8192
        assert hint & (hint - 1) == 0  # a power of two


@pytest.mark.parametrize("backend", ["memory", "sqlite"])
def test_analyze_union_matches_evaluate_union(backend, stores):
    store = stores[backend]
    disjuncts = (_chain(), _chain_typed())
    report = analyze_union(disjuncts, store)
    assert report.answers == evaluate_union(disjuncts, store)
    assert report.tree.annotations["rows"] == report.answer_count
    # _chain is a prefix of _chain_typed: the MQO shares one node here
    # (tests/query/test_mqo.py pins the gate), and the analyzed tree
    # must surface its fan-out accounting.
    assert report.tree.annotations["shared_nodes"] == 1
    assert report.tree.annotations["consuming"] == 2
    shared = [
        node
        for node in report.tree.children
        if node.label.startswith("shared node")
    ]
    assert len(shared) == 1
    assert shared[0].annotations["consumers"] == 2
    assert shared[0].annotations["rows"] >= 1
    branches = [
        node
        for node in report.tree.children
        if node.label.startswith("branch ")
    ]
    assert len(branches) == 2
    assert all("shared" in b.annotations for b in branches)


@pytest.mark.parametrize("backend", ["memory", "sqlite"])
def test_analyze_batch_matches_per_query_evaluation(backend, stores):
    store = stores[backend]
    queries = [_chain(), _chain_typed()]
    tree, answers = analyze_batch(queries, store)
    assert len(answers) == 2
    for query, answer_set in zip(queries, answers):
        assert answer_set == evaluate(query, store)
    assert tree.annotations["shared_nodes"] == 1
    assert tree.annotations["consuming"] == 2


def test_analyze_leaves_cached_plans_unprobed(museum_store, q_painters):
    from repro.engine import plan_query
    from repro.obs.analyze import _Probe

    baseline = plan_query(q_painters, museum_store)
    analyze_query(q_painters, museum_store, pushdown=False)
    cached = plan_query(q_painters, museum_store)
    assert cached is baseline

    def assert_unprobed(op):
        assert not isinstance(op, _Probe)
        for child in op._children():
            assert_unprobed(child)

    assert_unprobed(cached)


def test_analyze_restores_mqo_leaf_rows(museum_store):
    from repro.engine import mqo

    queries = (_chain(), _chain_typed())
    analyze_union(queries, museum_store)
    batch = mqo.plan_batch(list(queries), museum_store)
    compiled = mqo._compiled_batch(batch, museum_store)
    for node in compiled.nodes:
        if node.leaf is not None:
            assert tuple(node.leaf._rows) == ()
    for consumer in compiled.consumers:
        if consumer.leaf is not None:
            assert tuple(consumer.leaf._rows) == ()
