"""End-to-end integration: the full paper pipeline on the synthetic
Barton catalog — generate a satisfiable workload, search for views under
each entailment mode, materialize, and answer every query offline."""

import pytest

from repro.query.evaluation import evaluate
from repro.rdf.entailment import saturate
from repro.selection.recommender import ViewSelector
from repro.selection.search import SearchBudget
from repro.workload import QueryShape, SatisfiableWorkloadGenerator, WorkloadSpec


@pytest.fixture(scope="module")
def workload(barton_store):
    generator = SatisfiableWorkloadGenerator(barton_store, seed=21)
    return generator.generate(
        WorkloadSpec(4, 4, QueryShape.CHAIN, "high", constant_probability=0.4)
    )


def test_plain_pipeline(barton_store, workload):
    selector = ViewSelector(
        barton_store, strategy="dfs", budget=SearchBudget(time_limit=5.0)
    )
    recommendation = selector.recommend(workload)
    assert recommendation.result.best_cost <= recommendation.result.initial_cost
    extents = recommendation.materialize()
    for query in workload:
        assert recommendation.answer(query.name, extents) == evaluate(
            query, barton_store
        )


def test_post_reformulation_pipeline(barton_store, barton_schema, workload):
    selector = ViewSelector(
        barton_store,
        schema=barton_schema,
        strategy="dfs",
        entailment="post_reformulation",
        budget=SearchBudget(time_limit=8.0),
    )
    recommendation = selector.recommend(workload)
    extents = recommendation.materialize()
    saturated = saturate(barton_store, barton_schema)
    for query in workload:
        assert recommendation.answer(query.name, extents) == evaluate(
            query, saturated
        )


def test_three_tier_deployment_story(barton_store, workload):
    """The introduction's motivation: after materialization the client
    answers queries without any access to the database. We simulate it by
    deleting the store reference and using only the extents."""
    selector = ViewSelector(
        barton_store, strategy="gstr", budget=SearchBudget(time_limit=5.0)
    )
    recommendation = selector.recommend(workload)
    extents = recommendation.materialize()
    expected = {q.name: evaluate(q, barton_store) for q in workload}
    state = recommendation.state  # this plus extents is the "client" data
    from repro.selection.materialize import answer_query

    for query in workload:
        assert answer_query(state, query.name, extents) == expected[query.name]


def test_search_improves_over_initial_on_commonality_workload(barton_store):
    """With shared patterns across queries and non-trivial data, the
    search should find a state cheaper than materializing every query."""
    generator = SatisfiableWorkloadGenerator(barton_store, seed=33)
    workload = generator.generate(
        WorkloadSpec(5, 5, QueryShape.STAR, "high", constant_probability=0.5)
    )
    selector = ViewSelector(
        barton_store, strategy="dfs", budget=SearchBudget(time_limit=8.0)
    )
    recommendation = selector.recommend(workload)
    assert recommendation.result.rcr >= 0.0
    # All workload queries answered correctly from the recommended views.
    extents = recommendation.materialize()
    for query in workload:
        assert recommendation.answer(query.name, extents) == evaluate(
            query, barton_store
        )
