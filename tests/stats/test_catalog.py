"""Incrementality tests for the statistics catalog (repro.stats).

The catalog attached to every store must stay exactly in sync with the
store's contents through arbitrary add/remove churn and through
``store.copy()`` — verified here against a from-scratch recount.
"""

import random
from collections import Counter

import pytest

from repro.query.cq import Atom, Variable
from repro.rdf.store import TripleStore
from repro.rdf.triples import Triple
from repro.stats import CatalogStatistics, StatisticsCatalog
from repro.storage import BACKENDS

from tests.conftest import ex

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


def recounted(store: TripleStore) -> dict:
    """Ground-truth statistics recomputed from a full scan of the store."""
    columns = {"s": Counter(), "p": Counter(), "o": Counter()}
    for triple in store:
        columns["s"][triple.s] += 1
        columns["p"][triple.p] += 1
        columns["o"][triple.o] += 1
    return {
        "total": sum(columns["s"].values()),
        "distinct": {name: len(counter) for name, counter in columns.items()},
        "predicates": columns["p"],
    }


def assert_catalog_matches(store: TripleStore) -> None:
    truth = recounted(store)
    catalog = store.stats
    assert catalog.total_triples() == truth["total"]
    for column in ("s", "p", "o"):
        assert catalog.distinct_values(column) == truth["distinct"][column]
    for predicate, count in truth["predicates"].items():
        assert catalog.predicate_count(predicate) == count
    # No phantom predicates survive removal churn.
    live = {
        store.dictionary.decode(code)
        for code in catalog.column_value_counts("p")
    }
    assert live == set(truth["predicates"])


def triple(i: int, p: int, o: int) -> Triple:
    return Triple(ex(f"s{i}"), ex(f"p{p}"), ex(f"o{o}"))


class TestIncrementalMaintenance:
    def test_empty_store(self):
        store = TripleStore()
        assert_catalog_matches(store)
        assert store.stats.predicate_count(ex("nowhere")) == 0

    def test_adds_then_removes_match_recount(self):
        store = TripleStore()
        triples = [triple(i % 7, i % 3, i % 5) for i in range(40)]
        for t in triples:
            store.add(t)
        assert_catalog_matches(store)
        for t in triples[::2]:
            store.remove(t)
        assert_catalog_matches(store)
        # Duplicate adds and missing removes must not skew counters.
        store.add(triples[1])
        store.remove(triple(99, 99, 99))
        assert_catalog_matches(store)

    def test_randomized_churn_matches_recount(self):
        rng = random.Random(1234)
        store = TripleStore()
        universe = [triple(rng.randrange(10), rng.randrange(4), rng.randrange(8))
                    for _ in range(60)]
        for step in range(300):
            t = rng.choice(universe)
            if rng.random() < 0.6:
                store.add(t)
            else:
                store.remove(t)
            if step % 50 == 49:
                assert_catalog_matches(store)
        assert_catalog_matches(store)

    def test_remove_to_empty_resets_everything(self):
        store = TripleStore()
        t = triple(1, 1, 1)
        store.add(t)
        store.remove(t)
        assert store.stats.total_triples() == 0
        for column in ("s", "p", "o"):
            assert store.stats.distinct_values(column) == 0
        assert store.stats.predicate_count(ex("p1")) == 0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_removing_last_triple_of_predicate_leaves_no_stale_entries(
        self, backend
    ):
        """Regression: distincts/multiplicities return to the *exact*
        empty-store state — no zero-count counter entries, no stale
        pattern-memo figures — on either backend."""
        store = TripleStore(backend=backend)
        lonely = Triple(ex("s0"), ex("lonelyP"), ex("o0"))
        store.add(lonely)
        store.add(triple(1, 1, 1))
        # Prime the pattern memo while the predicate still exists.
        assert store.stats.pattern_count(None, ex("lonelyP"), None) == 1
        store.remove(lonely)
        store.remove(triple(1, 1, 1))
        fresh = TripleStore(backend=backend)
        # Counter structures are *equal to* a fresh catalog's — Counter
        # equality ignores zero entries, so compare the raw dicts too.
        assert store.stats._col_values == fresh.stats._col_values
        for counter in store.stats._col_values:
            assert dict(counter) == {}
        for column in ("s", "p", "o"):
            assert store.stats.distinct_values(column) == 0
            assert store.stats.column_value_counts(column) == Counter()
            # Backend ground truth agrees: no lingering buckets/rows.
            assert store.backend.column_value_counts(column) == Counter()
        assert store.stats.predicate_count(ex("lonelyP")) == 0
        # The memoized pre-removal count must not survive the removal.
        assert store.stats.pattern_count(None, ex("lonelyP"), None) == 0
        assert_catalog_matches(store)


class TestCopy:
    def test_copy_carries_statistics(self):
        store = TripleStore()
        for i in range(20):
            store.add(triple(i % 4, i % 2, i % 6))
        clone = store.copy()
        assert clone.stats is not store.stats
        assert_catalog_matches(clone)

    def test_copies_diverge_independently(self):
        store = TripleStore()
        for i in range(10):
            store.add(triple(i, i % 2, i % 3))
        clone = store.copy()
        store.remove(triple(0, 0, 0))
        clone.add(triple(50, 7, 9))
        assert_catalog_matches(store)
        assert_catalog_matches(clone)
        assert clone.stats.predicate_count(ex("p7")) == 1
        assert store.stats.predicate_count(ex("p7")) == 0


class TestPatternCounts:
    def test_pattern_count_is_exact_and_version_refreshed(self):
        store = TripleStore()
        store.add(triple(1, 1, 1))
        store.add(triple(2, 1, 1))
        assert store.stats.pattern_count(None, ex("p1"), None) == 2
        # The memo must refresh once the store version moves.
        store.add(triple(3, 1, 2))
        assert store.stats.pattern_count(None, ex("p1"), None) == 3
        store.remove(triple(1, 1, 1))
        assert store.stats.pattern_count(None, ex("p1"), None) == 2

    def test_pattern_count_of_unknown_constant_is_zero(self):
        store = TripleStore()
        store.add(triple(1, 1, 1))
        assert store.stats.pattern_count(None, ex("neverSeen"), None) == 0

    def test_catalog_statistics_provider(self, museum_store):
        provider = CatalogStatistics(museum_store.stats)
        assert provider.atom_count(Atom(X, ex("hasPainted"), Y)) == 6
        assert provider.atom_count(Atom(X, Y, Z)) == len(museum_store)
        assert provider.total_triples() == len(museum_store)
        assert provider.average_term_size() > 0
        for column in ("s", "p", "o"):
            assert provider.distinct_values(column) == museum_store.distinct_values(column)


class TestBulkLoadComplexity:
    def test_catalog_updates_are_constant_per_triple(self):
        """Counter sizes track contents, not mutation history: O(1) upkeep."""
        store = TripleStore()
        for i in range(200):
            store.add(triple(i, i % 3, i % 10))
        catalog = store.stats
        assert len(catalog.column_value_counts("p")) == 3
        assert len(catalog.column_value_counts("s")) == 200
        # Pattern memo is lazy: untouched by pure mutation.
        assert catalog._pattern_counts == {}


def test_version_tracks_store(museum_store):
    assert museum_store.stats.version == museum_store.version


def test_attach_is_automatic():
    assert isinstance(TripleStore().stats, StatisticsCatalog)
