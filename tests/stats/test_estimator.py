"""Unit tests for the shared System-R cardinality estimator."""

import pytest

from repro.query.parser import parse_query
from repro.rdf.store import TripleStore
from repro.rdf.triples import Triple
from repro.stats import CardinalityEstimator, CatalogStatistics, FixedStatistics

from tests.conftest import ex


def store_estimator(store: TripleStore) -> CardinalityEstimator:
    return CardinalityEstimator(CatalogStatistics(store.stats))


class TestConjunctionCardinality:
    def test_single_atom_is_exact(self, museum_store):
        estimator = store_estimator(museum_store)
        query = parse_query("v(X, Y) :- t(X, hasPainted, Y)")
        assert estimator.conjunction_cardinality(query.atoms) == pytest.approx(6.0)

    def test_join_variable_applies_selectivity(self, museum_store):
        estimator = store_estimator(museum_store)
        join = parse_query("v(X, Z) :- t(X, hasPainted, Y), t(Y, rdf:type, Z)")
        left = parse_query("v1(X, Y) :- t(X, hasPainted, Y)")
        right = parse_query("v2(Y, Z) :- t(Y, rdf:type, Z)")
        product = estimator.conjunction_cardinality(
            left.atoms
        ) * estimator.conjunction_cardinality(right.atoms)
        assert estimator.conjunction_cardinality(join.atoms) < product

    def test_estimate_clamped_to_one_row(self):
        estimator = CardinalityEstimator(FixedStatistics(total=10, selectivity=1e-9))
        query = parse_query("v(X) :- t(X, p, c), t(X, q, d)")
        assert estimator.conjunction_cardinality(query.atoms) >= 1.0

    def test_memo_refreshes_on_store_mutation(self):
        store = TripleStore()
        store.add(Triple(ex("a"), ex("p"), ex("b")))
        estimator = store_estimator(store)
        query = parse_query("v(X, Y) :- t(X, p, Y)")
        assert estimator.conjunction_cardinality(query.atoms) == pytest.approx(1.0)
        store.add(Triple(ex("c"), ex("p"), ex("d")))
        assert estimator.conjunction_cardinality(query.atoms) == pytest.approx(2.0)


class TestJoinOrder:
    def test_starts_from_rarest_atom(self, museum_store):
        estimator = store_estimator(museum_store)
        query = parse_query(
            "q(X, Z) :- t(X, hasPainted, Y), t(X, hasPainted, starryNight), "
            "t(X, isParentOf, Z)"
        )
        order = estimator.join_order(query.atoms)
        assert order[0] == 1  # the single-match constant atom leads

    def test_prefers_connected_expansion(self, museum_store):
        estimator = store_estimator(museum_store)
        # Atom 1 is rare but disconnected from atom 0's variables; the
        # connected atom 2 must come before the Cartesian step.
        query = parse_query(
            "q(X) :- t(X, hasPainted, starryNight), "
            "t(W, isExposedIn, brussels), t(X, isParentOf, Z)"
        )
        order = estimator.join_order(query.atoms)
        assert order.index(2) < order.index(1)

    def test_order_is_a_permutation(self, museum_store):
        estimator = store_estimator(museum_store)
        query = parse_query(
            "q(X, W) :- t(X, isParentOf, Y), t(Y, hasPainted, Z), "
            "t(Z, rdf:type, W)"
        )
        assert sorted(estimator.join_order(query.atoms)) == [0, 1, 2]

    def test_prefix_cardinalities_match_direct_formula(self, museum_store):
        estimator = store_estimator(museum_store)
        query = parse_query(
            "q(X, W) :- t(X, isParentOf, Y), t(Y, hasPainted, Z), "
            "t(Z, rdf:type, W), t(X, hasPainted, V)"
        )
        order = estimator.join_order(query.atoms)
        prefixes = estimator.prefix_cardinalities(query.atoms, order)
        for end, value in enumerate(prefixes, start=1):
            direct = estimator.conjunction_cardinality(
                [query.atoms[i] for i in order[:end]]
            )
            assert value == pytest.approx(direct)

    def test_prefix_cardinalities_monotone_shapes(self, museum_store):
        estimator = store_estimator(museum_store)
        query = parse_query(
            "q(X, W) :- t(X, isParentOf, Y), t(Y, hasPainted, Z), "
            "t(Z, rdf:type, W)"
        )
        order = estimator.join_order(query.atoms)
        prefixes = estimator.prefix_cardinalities(query.atoms, order)
        assert len(prefixes) == 3
        assert all(value >= 1.0 for value in prefixes)


class TestDegenerateStores:
    """Satellite regression: no division by zero on empty/degenerate data."""

    def test_empty_store_estimates_are_finite(self):
        estimator = store_estimator(TripleStore())
        query = parse_query("q(X, Z) :- t(X, p, Y), t(Y, q, Z)")
        estimate = estimator.conjunction_cardinality(query.atoms)
        assert estimate == pytest.approx(1.0)  # clamped, not NaN/inf

    def test_empty_store_selectivity_guard(self):
        estimator = store_estimator(TripleStore())
        assert estimator.join_selectivity(("s", "o")) == pytest.approx(1.0)
        assert estimator.join_selectivity(()) == pytest.approx(1.0)

    def test_empty_store_join_order_and_prefixes(self):
        estimator = store_estimator(TripleStore())
        query = parse_query("q(X, Z) :- t(X, p, Y), t(Y, q, Z)")
        order = estimator.join_order(query.atoms)
        assert sorted(order) == [0, 1]
        prefixes = estimator.prefix_cardinalities(query.atoms, order)
        assert all(value >= 1.0 for value in prefixes)

    def test_empty_store_average_term_size_nominal(self):
        statistics = CatalogStatistics(TripleStore().stats)
        assert statistics.average_term_size() > 0
