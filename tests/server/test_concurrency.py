"""Concurrency suite: many clients hammering one served snapshot get
answers identical to serial ``run_query`` — across backends, with and
without cross-client batching windows, from threads and from genuinely
separate processes."""

from __future__ import annotations

import multiprocessing
import threading

import pytest

from repro.server import Server, ServerClient, ServerConfig
from tests.server.conftest import WORKLOAD


def _hammer(server, reference, *, threads, rounds):
    """Drive ``threads`` clients concurrently; return all mismatches."""
    barrier = threading.Barrier(threads)
    mismatches: list[str] = []
    lock = threading.Lock()

    def drive(slot: int) -> None:
        with server.connect() as client:
            barrier.wait()
            for round_index in range(rounds):
                text = WORKLOAD[(slot + round_index) % len(WORKLOAD)]
                result = client.query(text, timeout=60.0)
                answers = frozenset(result.answers_or_raise())
                if answers != reference[text]:
                    with lock:
                        mismatches.append(
                            f"client {slot} round {round_index}: {text}"
                        )

    workers = [
        threading.Thread(target=drive, args=(slot,)) for slot in range(threads)
    ]
    for thread in workers:
        thread.start()
    for thread in workers:
        thread.join(timeout=120.0)
    assert not any(thread.is_alive() for thread in workers), "client hung"
    return mismatches


@pytest.mark.parametrize("backend", ["sqlite", "memory"])
@pytest.mark.parametrize("window_ms", [0.0, 5.0])
def test_threaded_clients_match_serial(snapshot, reference, backend, window_ms):
    config = ServerConfig(workers=2, backend=backend, window_ms=window_ms)
    with Server(snapshot, config) as server:
        mismatches = _hammer(server, reference, threads=4, rounds=6)
    assert mismatches == []


def test_batch_requests_match_serial(snapshot, reference):
    """Multi-query requests: per-request texts share one worker batch."""
    with Server(snapshot, ServerConfig(workers=2, window_ms=3.0)) as server:
        with server.connect() as client:
            results = client.query_batch(WORKLOAD, timeout=60.0)
        assert len(results) == len(WORKLOAD)
        for text, result in zip(WORKLOAD, results):
            assert frozenset(result.answers_or_raise()) == reference[text]


def _process_client(address, authkey, texts, expected_sizes, queue):
    """Runs in a separate process with no fork ancestry to the server's
    worker pool: connect over the socket, verify answer-set sizes."""
    try:
        client = ServerClient(address, authkey)
        try:
            for text, expected in zip(texts, expected_sizes):
                answers = client.query(text, timeout=60.0).answers_or_raise()
                if len(answers) != expected:
                    queue.put(f"size mismatch on {text}")
                    return
        finally:
            client.close()
        queue.put("ok")
    except Exception as exc:  # noqa: BLE001 - reported to the test
        queue.put(f"{type(exc).__name__}: {exc}")


def test_process_clients_match_serial(snapshot, reference):
    """Clients in separate OS processes (the production shape)."""
    context = multiprocessing.get_context("fork")
    expected_sizes = [len(reference[text]) for text in WORKLOAD]
    with Server(snapshot, ServerConfig(workers=2, window_ms=2.0)) as server:
        queue = context.Queue()
        processes = [
            context.Process(
                target=_process_client,
                args=(server.address, server.authkey, WORKLOAD,
                      expected_sizes, queue),
            )
            for _ in range(3)
        ]
        for process in processes:
            process.start()
        outcomes = [queue.get(timeout=60.0) for _ in processes]
        for process in processes:
            process.join(timeout=10.0)
    assert outcomes == ["ok", "ok", "ok"]


def test_windowed_batching_merges_concurrent_requests(snapshot, reference):
    """With a wide window, concurrent arrivals execute as shared
    batches (the MQO surface); answers stay per-request correct."""
    config = ServerConfig(workers=1, window_ms=50.0, test_hooks=True)
    with Server(snapshot, config) as server:
        clients = [server.connect() for _ in range(4)]
        try:
            barrier = threading.Barrier(4)
            results: dict[int, object] = {}

            def drive(slot: int) -> None:
                barrier.wait()
                results[slot] = clients[slot].query(
                    WORKLOAD[slot], timeout=60.0
                )

            threads = [
                threading.Thread(target=drive, args=(slot,))
                for slot in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60.0)
        finally:
            for client in clients:
                client.close()
        for slot in range(4):
            answers = frozenset(results[slot].answers_or_raise())
            assert answers == reference[WORKLOAD[slot]]
        # At least one executed batch gathered several requests' texts.
        assert any(len(texts) > 1 for _, texts in server.batch_log)


def test_single_request_batches_when_window_disabled(snapshot, reference):
    """window_ms=0: every request is its own worker batch."""
    with Server(snapshot, ServerConfig(workers=2, window_ms=0.0)) as server:
        mismatches = _hammer(server, reference, threads=3, rounds=4)
        assert mismatches == []
        assert all(len(texts) == 1 for _, texts in server.batch_log)


def test_server_counters_cover_all_requests(snapshot, reference):
    with Server(snapshot, ServerConfig(workers=2, window_ms=0.0)) as server:
        assert _hammer(server, reference, threads=3, rounds=5) == []
        counters = server.metrics_snapshot()["counters"]
    assert counters["server.queries"] == 15
    assert counters["server.requests"] == 15
    assert counters["serve.worker.queries"] == 15
    assert counters.get("server.errors", 0) == 0
