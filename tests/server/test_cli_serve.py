"""The ``serve`` CLI verb: replay mode end to end, flag handling, and
the JSON report it writes for CI."""

from __future__ import annotations

import json

from repro.cli import main
from tests.server.conftest import WORKLOAD


def _write_workload(path):
    path.write_text("\n".join(WORKLOAD) + "\n")
    return path


def test_serve_replay_verified(snapshot, tmp_path, capsys):
    workload = _write_workload(tmp_path / "workload.dq")
    report = tmp_path / "report.json"
    code = main([
        "serve", "--db", str(snapshot), "--replay", str(workload),
        "--clients", "3", "--repeat", "4", "--workers", "2",
        "--json", str(report), "-q",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "errors 0  mismatches 0" in out
    payload = json.loads(report.read_text())
    assert payload["verified"] is True
    assert payload["replay"]["queries"] == len(WORKLOAD) * 4
    assert payload["replay"]["errors"] == 0
    assert payload["replay"]["mismatches"] == 0
    assert payload["replay"]["qps"] > 0
    for percentile in ("p50", "p95", "p99"):
        assert payload["replay"]["latency_ms"][percentile] is not None
    counters = payload["server_metrics"]["counters"]
    assert counters["server.queries"] == len(WORKLOAD) * 4
    assert counters["serve.worker.queries"] == len(WORKLOAD) * 4


def test_serve_replay_memory_backend(snapshot, tmp_path):
    workload = _write_workload(tmp_path / "workload.dq")
    code = main([
        "serve", "--db", str(snapshot), "--replay", str(workload),
        "--backend", "memory", "--workers", "1", "--repeat", "2", "-q",
    ])
    assert code == 0


def test_serve_replay_no_verify(snapshot, tmp_path, capsys):
    workload = _write_workload(tmp_path / "workload.dq")
    code = main([
        "serve", "--db", str(snapshot), "--replay", str(workload),
        "--no-verify", "--repeat", "1", "-q",
    ])
    assert code == 0
    assert "[unverified]" in capsys.readouterr().out


def test_serve_missing_snapshot(tmp_path):
    workload = _write_workload(tmp_path / "workload.dq")
    code = main([
        "serve", "--db", str(tmp_path / "missing.snapshot"),
        "--replay", str(workload), "-q",
    ])
    assert code == 2


def test_serve_empty_workload(snapshot, tmp_path):
    empty = tmp_path / "empty.dq"
    empty.write_text("# no queries here\n")
    code = main([
        "serve", "--db", str(snapshot), "--replay", str(empty), "-q",
    ])
    assert code == 2


def test_classic_verb_still_routes(tmp_path, capsys):
    """The flag-based selector CLI is untouched by the verb routing."""
    data = tmp_path / "data.nt"
    data.write_text(
        "<http://e/a> <http://e/p> <http://e/b> .\n"
        "<http://e/b> <http://e/p> <http://e/c> .\n"
    )
    queries = tmp_path / "q.dq"
    queries.write_text("q1(X, Y) :- t(X, <http://e/p>, Y)\n")
    code = main([
        "--data", str(data), "--queries", str(queries),
        "--time-limit", "2", "-q",
    ])
    assert code == 0
    assert "recommended views:" in capsys.readouterr().out
