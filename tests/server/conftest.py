"""Shared fixtures of the server-mode suite: one saved snapshot of a
small but join-rich dataset, plus its parsed workload and the serial
reference answers every served answer must match."""

from __future__ import annotations

import pytest

from repro.engine import run_query
from repro.query.parser import parse_query
from repro.rdf.store import TripleStore
from repro.rdf.terms import URI
from repro.rdf.triples import Triple

NS = "http://test/"

#: Query texts mixing selective scans, star joins, and a chain join —
#: enough plan diversity that per-worker plan caches and MQO windows
#: have real work to share.
WORKLOAD = [
    f"q1(X, O) :- t(X, <{NS}p0>, O)",
    f"q2(X) :- t(X, <{NS}p1>, O), t(X, <{NS}p2>, O2)",
    f"q3(X, Z) :- t(X, <{NS}p0>, Y), t(Y, <{NS}p1>, Z)",
    f"q4(O) :- t(<{NS}s1>, <{NS}p3>, O)",
    f"q5(X, O) :- t(X, <{NS}p2>, O)",
]


def build_store() -> TripleStore:
    store = TripleStore()
    for i in range(120):
        store.add(
            Triple(
                URI(f"{NS}s{i % 15}"),
                URI(f"{NS}p{i % 4}"),
                URI(f"{NS}s{(i * 7) % 15}") if i % 3 else URI(f"{NS}o{i}"),
            )
        )
    return store


@pytest.fixture(scope="module")
def snapshot(tmp_path_factory):
    """Path of a saved snapshot of the shared test dataset."""
    path = tmp_path_factory.mktemp("serve") / "kb.snapshot"
    store = build_store()
    store.save(path)
    store.close()
    return path


@pytest.fixture(scope="module")
def reference(snapshot):
    """text -> frozenset of serial single-process answers."""
    store = TripleStore.open(snapshot, backend="sqlite", read_only=True)
    try:
        return {
            text: frozenset(run_query(parse_query(text), store))
            for text in WORKLOAD
        }
    finally:
        store.close()
