"""Regression tests for server-side batch-size normalization.

The CLI maps ``--batch-size 0`` to the tuple-at-a-time path through
``_check_batch_size``, but the server protocol and the worker pool used
to pass sizes through verbatim — a 0 reaching ``run_query_batch``
inside a worker would request zero-row batches. Both entry points now
normalize through the same ``_check_batch_size`` boundary, before any
worker forks, so invalid sizes fail loudly in the parent process.
"""

import pytest

from repro.server import Server, ServerConfig
from repro.server.pool import WorkerPool

from tests.server.conftest import WORKLOAD


def test_worker_pool_normalizes_batch_size_zero(snapshot):
    pool = WorkerPool(snapshot, workers=1, batch_size=0)
    try:
        assert pool.batch_size is None
    finally:
        pool.shutdown()


def test_worker_pool_rejects_invalid_sizes_before_forking(snapshot):
    with pytest.raises(ValueError, match="batch_size"):
        WorkerPool(snapshot, workers=1, batch_size=-4)
    with pytest.raises(ValueError, match="batch_size"):
        WorkerPool(snapshot, workers=1, batch_size="vectorized")


def test_server_normalizes_config_and_serves_tuple_path(snapshot, reference):
    """``batch_size=0`` round-trips: normalized to None on the config,
    handed to the pool, and the served answers still match serial
    evaluation on the tuple-at-a-time path."""
    config = ServerConfig(workers=1, batch_size=0, window_ms=0.0)
    with Server(snapshot, config) as server:
        assert server.config.batch_size is None
        assert server.pool.batch_size is None
        with server.connect() as client:
            for text in WORKLOAD[:2]:
                answers = client.query(text, timeout=60.0).answers_or_raise()
                assert frozenset(answers) == reference[text]


def test_server_accepts_adaptive_batch_size(snapshot, reference):
    config = ServerConfig(workers=1, batch_size="adaptive", window_ms=0.0)
    with Server(snapshot, config) as server:
        assert server.config.batch_size == "adaptive"
        with server.connect() as client:
            text = WORKLOAD[2]
            answers = client.query(text, timeout=60.0).answers_or_raise()
            assert frozenset(answers) == reference[text]


def test_server_rejects_invalid_batch_size(snapshot):
    with pytest.raises(ValueError, match="batch_size"):
        Server(snapshot, ServerConfig(workers=1, batch_size=-1))
