"""Fault tolerance: killed workers and vanishing snapshots must end in
a replaced worker plus a retried request or a clean error — never a
hang. Every client call below carries a timeout, so a regression that
reintroduces a hang fails the test instead of wedging the suite."""

from __future__ import annotations

import os
import shutil
import signal
import threading
import time

from repro.server import Server, ServerConfig
from tests.server.conftest import WORKLOAD, build_store


def _query_in_background(client, text, delay_ms):
    """Submit a held-in-flight query (test-hook delay) from a thread."""
    box: dict = {}

    def submit() -> None:
        try:
            box["result"] = client.query(
                text, timeout=60.0, delay_ms=delay_ms
            )
        except Exception as exc:  # noqa: BLE001 - asserted by callers
            box["raised"] = exc

    thread = threading.Thread(target=submit)
    thread.start()
    return thread, box


def test_killed_worker_is_replaced_and_request_retried(snapshot, reference):
    config = ServerConfig(
        workers=1, window_ms=0.0, retries=1, test_hooks=True
    )
    with Server(snapshot, config) as server:
        victim = server.worker_pids()[0]
        with server.connect() as client:
            thread, box = _query_in_background(client, WORKLOAD[0], 800)
            time.sleep(0.3)  # let the request reach the worker
            os.kill(victim, signal.SIGKILL)
            thread.join(timeout=60.0)
            assert not thread.is_alive(), "request hung after worker kill"
            result = box["result"]
            assert result.ok, result.error
            assert frozenset(result.answers) == reference[WORKLOAD[0]]
        assert server.worker_pids() != [victim]
        counters = server.metrics_snapshot()["counters"]
        assert counters["server.worker_crashes"] == 1
        assert counters["server.retries"] == 1


def test_killed_worker_without_retries_is_clean_error(snapshot, reference):
    config = ServerConfig(
        workers=1, window_ms=0.0, retries=0, test_hooks=True
    )
    with Server(snapshot, config) as server:
        victim = server.worker_pids()[0]
        with server.connect() as client:
            thread, box = _query_in_background(client, WORKLOAD[0], 800)
            time.sleep(0.3)
            os.kill(victim, signal.SIGKILL)
            thread.join(timeout=60.0)
            assert not thread.is_alive(), "request hung after worker kill"
            result = box["result"]
            assert not result.ok
            assert "worker died" in result.error
            # The pool healed: the very next query succeeds.
            healed = client.query(WORKLOAD[1], timeout=60.0)
            assert frozenset(healed.answers_or_raise()) == (
                reference[WORKLOAD[1]]
            )
        assert server.worker_pids() != [victim]


def test_other_clients_unaffected_by_crash(snapshot, reference):
    """A crash serving one client must not corrupt another's requests."""
    config = ServerConfig(
        workers=2, window_ms=0.0, retries=1, test_hooks=True
    )
    with Server(snapshot, config) as server:
        with server.connect() as victim_client, server.connect() as other:
            thread, box = _query_in_background(
                victim_client, WORKLOAD[0], 1000
            )
            time.sleep(0.3)
            # Kill whichever worker holds the delayed request: it is the
            # busy one; the other keeps serving.
            for _ in range(20):
                answers = other.query(
                    WORKLOAD[2], timeout=60.0
                ).answers_or_raise()
                assert frozenset(answers) == reference[WORKLOAD[2]]
            os.kill(server.worker_pids()[0], signal.SIGKILL)
            thread.join(timeout=60.0)
            assert not thread.is_alive()
            final = other.query(WORKLOAD[3], timeout=60.0)
            assert frozenset(final.answers_or_raise()) == (
                reference[WORKLOAD[3]]
            )


def test_deleted_snapshot_surfaces_clean_error(tmp_path):
    """Unlinking the snapshot under the server: SQLite would keep
    silently serving the open inode, so the worker's identity check
    must turn the next request into a clear error."""
    path = tmp_path / "kb.snapshot"
    store = build_store()
    store.save(path)
    store.close()
    with Server(path, ServerConfig(workers=1, window_ms=0.0)) as server:
        with server.connect() as client:
            assert client.query(WORKLOAD[0], timeout=60.0).ok
            os.remove(path)
            result = client.query(WORKLOAD[0], timeout=60.0)
            assert not result.ok
            assert "deleted" in result.error


def test_replaced_snapshot_surfaces_clean_error(tmp_path):
    """Atomically swapping a *different* snapshot into the same path
    changes the inode; serving stale data silently is not acceptable."""
    path = tmp_path / "kb.snapshot"
    store = build_store()
    store.save(path)
    store.close()
    replacement = build_store()
    replacement.save(tmp_path / "next.snapshot")
    replacement.close()
    with Server(path, ServerConfig(workers=1, window_ms=0.0)) as server:
        with server.connect() as client:
            assert client.query(WORKLOAD[0], timeout=60.0).ok
            shutil.move(tmp_path / "next.snapshot", path)
            result = client.query(WORKLOAD[0], timeout=60.0)
            assert not result.ok
            assert "replaced" in result.error


def test_missing_snapshot_rejected_at_startup(tmp_path):
    from repro.server import ServerError

    try:
        Server(tmp_path / "nope.snapshot", ServerConfig(workers=1))
    except ServerError as exc:
        assert "does not exist" in str(exc)
    else:
        raise AssertionError("Server accepted a missing snapshot")


def test_repeated_crashes_keep_pool_capacity(snapshot, reference):
    """Crash-replace several times in a row; the pool never shrinks."""
    config = ServerConfig(
        workers=1, window_ms=0.0, retries=1, test_hooks=True
    )
    with Server(snapshot, config) as server:
        with server.connect() as client:
            for _ in range(3):
                victim = server.worker_pids()[0]
                thread, box = _query_in_background(client, WORKLOAD[0], 600)
                time.sleep(0.25)
                os.kill(victim, signal.SIGKILL)
                thread.join(timeout=60.0)
                assert not thread.is_alive()
                result = box["result"]
                assert result.ok, result.error
                assert frozenset(result.answers) == reference[WORKLOAD[0]]
                assert len(server.worker_pids()) == 1
                assert server.worker_pids()[0] != victim
