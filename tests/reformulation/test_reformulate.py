"""Unit tests for Algorithm 1 (Reformulate), rule by rule, plus the
paper's Table 2 example and the Theorem 4.1 bound."""

import pytest

from repro.query.cq import Variable
from repro.query.containment import is_isomorphic
from repro.query.evaluation import evaluate, evaluate_union
from repro.query.parser import parse_query
from repro.rdf.entailment import saturate
from repro.rdf.schema import RDFSchema
from repro.rdf.vocabulary import RDF_TYPE
from repro.reformulation.reformulate import reformulate, reformulation_bound

from tests.conftest import ex

X, Y = Variable("X1"), Variable("X2")


@pytest.fixture()
def table2_schema():
    """The Section 4.3 example: painting ⊑ picture, isExpIn ⊑ isLocatIn."""
    schema = RDFSchema()
    schema.add_subclass(ex("painting"), ex("picture"))
    schema.add_subproperty(ex("isExpIn"), ex("isLocatIn"))
    return schema


class TestIndividualRules:
    def test_rule1_subclass(self, table2_schema):
        query = parse_query("q1(X1) :- t(X1, rdf:type, picture)")
        union = reformulate(query, table2_schema)
        # Table 2, q1,S: the original plus the painting variant.
        assert len(union) == 2
        bodies = {cq.atoms[0].o for cq in union}
        assert bodies == {ex("picture"), ex("painting")}

    def test_rule2_subproperty(self, table2_schema):
        query = parse_query("q(X1, X2) :- t(X1, isLocatIn, X2)")
        union = reformulate(query, table2_schema)
        assert len(union) == 2
        properties = {cq.atoms[0].p for cq in union}
        assert properties == {ex("isLocatIn"), ex("isExpIn")}

    def test_rule3_domain(self):
        schema = RDFSchema()
        schema.add_domain(ex("hasPainted"), ex("painter"))
        query = parse_query("q(X1) :- t(X1, rdf:type, painter)")
        union = reformulate(query, schema)
        assert len(union) == 2
        variants = [cq for cq in union if cq.atoms[0].p == ex("hasPainted")]
        assert len(variants) == 1
        # The object is a fresh existential variable.
        new_atom = variants[0].atoms[0]
        assert isinstance(new_atom.o, Variable)
        assert new_atom.o not in variants[0].head

    def test_rule4_range(self):
        schema = RDFSchema()
        schema.add_range(ex("hasPainted"), ex("painting"))
        query = parse_query("q(X1) :- t(X1, rdf:type, painting)")
        union = reformulate(query, schema)
        assert len(union) == 2
        variants = [cq for cq in union if cq.atoms[0].p == ex("hasPainted")]
        assert variants[0].atoms[0].o == Variable("X1")  # subject became object
        # X1 now sits in object position but stands for a triple subject:
        # it must never bind to a literal.
        assert Variable("X1") in variants[0].non_literal

    def test_rule4_does_not_over_answer_on_literals(self):
        """Regression: reformulation over data with literal objects must
        not return literal 'subjects' that saturation can never type."""
        from repro.query.evaluation import evaluate, evaluate_union
        from repro.rdf.entailment import saturate
        from repro.rdf.store import TripleStore
        from repro.rdf.terms import Literal
        from repro.rdf.triples import Triple

        schema = RDFSchema()
        schema.add_range(ex("title"), ex("label"))
        store = TripleStore()
        store.add(Triple(ex("book"), ex("title"), Literal("Moby Dick")))
        store.add(Triple(ex("book"), ex("title"), ex("someUri")))
        query = parse_query("q(X) :- t(X, rdf:type, label)")
        union = reformulate(query, schema)
        on_plain = evaluate_union(union, store)
        on_saturated = evaluate(query, saturate(store, schema))
        assert on_plain == on_saturated == {(ex("someUri"),)}

    def test_rule5_class_variable_binding(self, table2_schema):
        query = parse_query("q(X1, X2) :- t(X1, rdf:type, X2)")
        union = reformulate(query, table2_schema)
        # Original + one binding per schema class (picture, painting).
        heads = {cq.head for cq in union}
        assert (Variable("X1"), ex("picture")) in heads
        assert (Variable("X1"), ex("painting")) in heads
        assert (Variable("X1"), Variable("X2")) in heads

    def test_rule6_property_variable_binding(self, table2_schema):
        query = parse_query("q(X1, X2) :- t(X1, X2, picture)")
        union = reformulate(query, table2_schema)
        # Table 2, q4,S: 6 union terms.
        assert len(union) == 6
        heads = {cq.head for cq in union}
        assert (Variable("X1"), ex("isLocatIn")) in heads
        assert (Variable("X1"), ex("isExpIn")) in heads
        assert (Variable("X1"), RDF_TYPE) in heads

    def test_rule6_binds_all_occurrences(self, table2_schema):
        # The σ substitution binds *every* occurrence of the variable:
        # no disjunct may leave one atom's property variable unbound while
        # the other is a constant. (Later rule-2 steps may then specialize
        # the two atoms independently — that is sound, the join on the
        # original variable was resolved at binding time.)
        query = parse_query("q(X1) :- t(X1, X2, picture), t(X1, X2, painting)")
        union = reformulate(query, table2_schema)
        for cq in union:
            p0, p1 = cq.atoms[0].p, cq.atoms[1].p
            assert isinstance(p0, Variable) == isinstance(p1, Variable)
            if isinstance(p0, Variable):
                assert p0 == p1  # the original shared variable, untouched


class TestTable2Example:
    def test_q4_reformulation_terms(self, table2_schema):
        """All six union terms of Table 2's q4,S, up to renaming."""
        query = parse_query("q4(X1, X2) :- t(X1, X2, picture)")
        union = reformulate(query, table2_schema)
        expected = [
            parse_query("e1(X1, X2) :- t(X1, X2, picture)"),
            parse_query("e2(X1, isLocatIn) :- t(X1, isLocatIn, picture)"),
            parse_query("e3(X1, isExpIn) :- t(X1, isExpIn, picture)"),
            parse_query("e4(X1, rdf:type) :- t(X1, rdf:type, picture)"),
            parse_query("e5(X1, isLocatIn) :- t(X1, isExpIn, picture)"),
            parse_query("e6(X1, rdf:type) :- t(X1, rdf:type, painting)"),
        ]
        assert len(union) == len(expected)
        for wanted in expected:
            assert any(
                is_isomorphic(wanted, got, match_heads=True) for got in union
            ), f"missing union term {wanted}"


class TestAlgorithmProperties:
    def test_original_query_always_included(self, table2_schema, q_painters):
        union = reformulate(q_painters, table2_schema)
        assert any(is_isomorphic(q_painters, cq, match_heads=True) for cq in union)

    def test_empty_schema_is_identity(self, q_painters):
        union = reformulate(q_painters, RDFSchema())
        assert len(union) == 1

    def test_no_duplicate_disjuncts(self, museum_schema):
        query = parse_query("q(X) :- t(X, rdf:type, work)")
        union = reformulate(query, museum_schema)
        keys = set()
        from repro.query.containment import canonical_form

        for cq in union:
            key = canonical_form(cq)
            assert key not in keys
            keys.add(key)

    def test_terminates_on_cyclic_schema(self):
        schema = RDFSchema()
        schema.add_subclass(ex("a"), ex("b"))
        schema.add_subclass(ex("b"), ex("a"))
        query = parse_query("q(X) :- t(X, rdf:type, a)")
        union = reformulate(query, schema)
        assert len(union) == 2

    def test_theorem_41_bound(self, museum_schema, barton_schema):
        queries = [
            parse_query("q(X) :- t(X, rdf:type, picture)"),
            parse_query("q(X, Y) :- t(X, isLocatedIn, Y)"),
            parse_query("q(X, Y) :- t(X, rdf:type, picture), t(X, isLocatedIn, Y)"),
            parse_query("q(X, Y) :- t(X, Y, Z)"),
        ]
        for schema in (museum_schema, barton_schema):
            for query in queries:
                union = reformulate(query, schema)
                assert len(union) <= reformulation_bound(schema, query)

    def test_multi_atom_reformulation_multiplies(self, table2_schema):
        one = parse_query("q(X1) :- t(X1, rdf:type, picture)")
        two = parse_query(
            "q(X1, X2) :- t(X1, rdf:type, picture), t(X2, rdf:type, picture), "
            "t(X1, isLocatIn, X2)"
        )
        assert len(reformulate(two, table2_schema)) > len(reformulate(one, table2_schema))


class TestTheorem42Correctness:
    """evaluate(q, saturate(D, S)) == evaluate(Reformulate(q, S), D)."""

    def test_on_museum_data(self, museum_store, museum_schema):
        queries = [
            parse_query("q(X) :- t(X, rdf:type, picture)"),
            parse_query("q(X) :- t(X, rdf:type, work)"),
            parse_query("q(X, Y) :- t(X, isLocatedIn, Y)"),
            parse_query("q(X, Y) :- t(X, rdf:type, picture), t(X, isLocatedIn, Y)"),
            parse_query("q(X) :- t(X, rdf:type, painter)"),
            parse_query("q(X, P, Y) :- t(X, P, Y)"),
            parse_query("q(X, C) :- t(X, rdf:type, C)"),
        ]
        saturated = saturate(museum_store, museum_schema)
        for query in queries:
            union = reformulate(query, museum_schema)
            assert evaluate_union(union, museum_store) == evaluate(query, saturated), (
                f"Theorem 4.2 violated for {query}"
            )

    def test_on_barton_data(self, barton_store, barton_schema):
        from repro.workload import SatisfiableWorkloadGenerator, WorkloadSpec, QueryShape

        generator = SatisfiableWorkloadGenerator(barton_store, seed=11)
        queries = generator.generate(
            WorkloadSpec(3, 3, QueryShape.STAR, "low", constant_probability=0.6)
        )
        saturated = saturate(barton_store, barton_schema)
        for query in queries:
            union = reformulate(query, barton_schema)
            assert evaluate_union(union, barton_store) == evaluate(query, saturated)
