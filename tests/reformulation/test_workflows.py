"""Unit tests for the pre-/post-reformulation workflows (Section 4.3)."""

from repro.query.evaluation import evaluate, evaluate_union
from repro.query.parser import parse_query
from repro.rdf.entailment import saturate
from repro.reformulation.workflows import (
    post_reformulation_views,
    pre_reformulation_initial_state,
    reformulate_workload,
)
from repro.selection.state import initial_state


def entailed_queries():
    return [
        parse_query("q1(X, Y) :- t(X, rdf:type, picture), t(X, isLocatedIn, Y)"),
        parse_query("q2(X) :- t(X, rdf:type, work)"),
    ]


class TestReformulateWorkload:
    def test_one_union_per_query(self, museum_schema):
        unions = reformulate_workload(entailed_queries(), museum_schema)
        assert [u.name for u in unions] == ["q1", "q2"]
        assert all(len(u) >= 1 for u in unions)

    def test_workload_grows_with_schema(self, museum_schema):
        unions = reformulate_workload(entailed_queries(), museum_schema)
        # q2 over `work` expands through the subclass chain.
        assert len(unions[1]) > 1


class TestPreReformulationState:
    def test_views_count_matches_disjuncts(self, museum_schema):
        queries = entailed_queries()
        unions = reformulate_workload(queries, museum_schema)
        state = pre_reformulation_initial_state(queries, museum_schema)
        assert len(state.views) == sum(len(u) for u in unions)

    def test_union_rewritings_answer_with_implicit_triples(
        self, museum_store, museum_schema
    ):
        from repro.selection.materialize import answer_query, materialize_views

        queries = entailed_queries()
        state = pre_reformulation_initial_state(queries, museum_schema)
        extents = materialize_views(state, museum_store)
        saturated = saturate(museum_store, museum_schema)
        for query in queries:
            assert answer_query(state, query.name, extents) == evaluate(
                query, saturated
            )


class TestPostReformulationViews:
    def test_each_view_reformulated(self, museum_schema):
        state = initial_state(entailed_queries())
        views = post_reformulation_views(state, museum_schema)
        assert set(views) == {v.name for v in state.views}

    def test_materializing_unions_equals_saturated_views(
        self, museum_store, museum_schema
    ):
        state = initial_state(entailed_queries())
        unions = post_reformulation_views(state, museum_schema)
        saturated = saturate(museum_store, museum_schema)
        for view in state.views:
            on_plain = evaluate_union(unions[view.name], museum_store)
            on_saturated = evaluate(view, saturated)
            assert on_plain == on_saturated
