"""Unit tests for the synthetic Barton-like catalog generator."""


from repro.datagen.barton import (
    BartonConfig,
    CLASS_NAMES,
    PROPERTY_NAMES,
    build_schema,
    generate_barton,
)
from repro.rdf.entailment import saturate
from repro.rdf.schema import SchemaKind
from repro.rdf.vocabulary import RDF_TYPE


def test_vocabulary_sizes_match_barton():
    """Section 6.5: 39 classes, 61 properties, 106 RDFS statements."""
    assert len(CLASS_NAMES) == 39
    assert len(PROPERTY_NAMES) == 61
    schema = build_schema(BartonConfig())
    assert len(schema) == 106
    assert len(schema.classes) == 39


def test_schema_statement_mix():
    schema = build_schema(BartonConfig())
    assert len(schema.statements(SchemaKind.SUBCLASS)) == 38
    assert len(schema.statements(SchemaKind.SUBPROPERTY)) == 15
    assert len(schema.statements(SchemaKind.DOMAIN)) == 30
    assert len(schema.statements(SchemaKind.RANGE)) == 23


def test_store_respects_target_size():
    store, _ = generate_barton(BartonConfig(num_triples=3_000, num_entities=500, seed=3))
    assert len(store) == 3_000


def test_generation_is_deterministic():
    config = BartonConfig(num_triples=1_000, num_entities=200, seed=5)
    store1, schema1 = generate_barton(config)
    store2, schema2 = generate_barton(config)
    assert set(store1) == set(store2)
    assert schema1.statements() == schema2.statements()


def test_different_seeds_differ():
    store1, _ = generate_barton(BartonConfig(num_triples=1_000, num_entities=200, seed=1))
    store2, _ = generate_barton(BartonConfig(num_triples=1_000, num_entities=200, seed=2))
    assert set(store1) != set(store2)


def test_data_is_not_saturated(barton_store, barton_schema):
    """Implicit triples must exist — entailment experiments need them."""
    saturated = saturate(barton_store, barton_schema)
    assert len(saturated) > len(barton_store)


def test_every_entity_has_one_type(barton_store):
    typed_entities = {t.s for t in barton_store.match(p=RDF_TYPE)}
    assert typed_entities  # types are asserted
    for triple in list(barton_store.match(p=RDF_TYPE))[:50]:
        # Exactly one most-specific type per entity in raw data.
        types = list(barton_store.match(s=triple.s, p=RDF_TYPE))
        assert len(types) == 1


def test_property_usage_is_skewed(barton_store):
    counts = sorted(
        barton_store.column_value_counts("p").values(), reverse=True
    )
    assert counts[0] > counts[-1] * 3, "expected skewed property usage"
