"""Shared fixtures: a hand-built museum micro-dataset (the paper's running
example), a seeded synthetic Barton-like catalog, and reference queries.
"""

from __future__ import annotations

import pytest

from repro.datagen import BartonConfig, generate_barton
from repro.query.parser import parse_query
from repro.rdf.schema import RDFSchema
from repro.rdf.store import TripleStore
from repro.rdf.terms import Literal, URI
from repro.rdf.triples import Triple
from repro.rdf.vocabulary import RDF_TYPE

EX = "http://example.org/"


def ex(name: str) -> URI:
    """A URI in the example namespace."""
    return URI(EX + name)


@pytest.fixture(scope="session")
def museum_store() -> TripleStore:
    """The paper's museum running example: painters, paintings, families."""
    store = TripleStore()
    facts = [
        # van Gogh painted Starry Night; his child Vincent Willem
        # "painted" a sketch (fictional, for join coverage).
        (ex("vanGogh"), ex("hasPainted"), ex("starryNight")),
        (ex("vanGogh"), ex("hasPainted"), ex("sunflowers")),
        (ex("vanGogh"), ex("isParentOf"), ex("vincentW")),
        (ex("vincentW"), ex("hasPainted"), ex("sketch1")),
        # Bruegel the Elder and the Younger, both painters.
        (ex("bruegelSr"), ex("hasPainted"), ex("babel")),
        (ex("bruegelSr"), ex("isParentOf"), ex("bruegelJr")),
        (ex("bruegelJr"), ex("hasPainted"), ex("birdTrap")),
        (ex("bruegelJr"), ex("hasPainted"), ex("flowers")),
        # Types and locations.
        (ex("starryNight"), RDF_TYPE, ex("painting")),
        (ex("babel"), RDF_TYPE, ex("painting")),
        (ex("birdTrap"), RDF_TYPE, ex("painting")),
        (ex("sketch1"), RDF_TYPE, ex("sketch")),
        (ex("starryNight"), ex("isLocatedIn"), ex("moma")),
        (ex("babel"), ex("isLocatedIn"), ex("vienna")),
        (ex("birdTrap"), ex("isExposedIn"), ex("brussels")),
        (ex("vanGogh"), RDF_TYPE, ex("painter")),
        (ex("bruegelSr"), RDF_TYPE, ex("painter")),
        (ex("bruegelJr"), RDF_TYPE, ex("painter")),
    ]
    for s, p, o in facts:
        store.add(Triple(s, p, o))
    store.add(Triple(ex("starryNight"), ex("title"), Literal("The Starry Night")))
    return store


@pytest.fixture(scope="session")
def museum_schema() -> RDFSchema:
    """The Section 4.3 example schema: painting ⊑ picture,
    isExposedIn ⊑ isLocatedIn — plus a sketch ⊑ picture branch."""
    schema = RDFSchema()
    schema.add_subclass(ex("painting"), ex("picture"))
    schema.add_subclass(ex("sketch"), ex("picture"))
    schema.add_subclass(ex("picture"), ex("work"))
    schema.add_subproperty(ex("isExposedIn"), ex("isLocatedIn"))
    schema.add_domain(ex("hasPainted"), ex("painter"))
    schema.add_range(ex("hasPainted"), ex("painting"))
    return schema


@pytest.fixture(scope="session")
def q_painters():
    """The paper's running example query q1."""
    return parse_query(
        "q1(X, Z) :- t(X, hasPainted, starryNight), t(X, isParentOf, Y), "
        "t(Y, hasPainted, Z)"
    )


@pytest.fixture(scope="session")
def q_pictures():
    """The Section 3.3 statistics example query."""
    return parse_query(
        "q(X1, X2) :- t(X1, rdf:type, picture), t(X1, isLocatedIn, X2)"
    )


@pytest.fixture(scope="session")
def barton():
    """A small seeded synthetic Barton catalog: (store, schema)."""
    return generate_barton(BartonConfig(num_triples=6_000, num_entities=1_200, seed=7))


@pytest.fixture(scope="session")
def barton_store(barton):
    return barton[0]


@pytest.fixture(scope="session")
def barton_schema(barton):
    return barton[1]
