"""Executable documentation: the public-API doctest suite.

The examples in the docstrings of the engine and storage entry points
(``run_query``/``run_plan``/``choose_engine``, ``algebra.execute``,
``StorageBackend``/``create_backend``, ``TripleStore.save``/``open``)
double as regression tests; CI runs them through this module (and the
docs job runs them standalone). A module listed here with zero
collected doctests fails, so the examples cannot silently vanish.
"""

import doctest

import pytest

import repro.engine.mqo
import repro.engine.planner
import repro.engine.sqlcompile
import repro.query.algebra
import repro.rdf.store
import repro.storage.base

DOCUMENTED_MODULES = [
    repro.engine.mqo,
    repro.engine.planner,
    repro.engine.sqlcompile,
    repro.query.algebra,
    repro.rdf.store,
    repro.storage.base,
]


@pytest.mark.parametrize(
    "module", DOCUMENTED_MODULES, ids=lambda module: module.__name__
)
def test_public_api_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, (
        f"no doctest examples collected from {module.__name__}; "
        "the public-API examples must stay executable"
    )
    assert results.failed == 0
