"""Unit tests for the N-Triples parser/serializer."""

import pytest

from repro.rdf.ntriples import (
    NTriplesParseError,
    parse_ntriples,
    parse_ntriples_line,
    serialize_ntriples,
)
from repro.rdf.terms import BlankNode, Literal, URI
from repro.rdf.triples import Triple


class TestParsing:
    def test_simple_uri_triple(self):
        triple = parse_ntriples_line("<http://a> <http://p> <http://b> .")
        assert triple == Triple(URI("http://a"), URI("http://p"), URI("http://b"))

    def test_blank_node_subject_and_object(self):
        triple = parse_ntriples_line("_:x <http://p> _:y .")
        assert triple == Triple(BlankNode("x"), URI("http://p"), BlankNode("y"))

    def test_plain_literal(self):
        triple = parse_ntriples_line('<http://a> <http://p> "hello" .')
        assert triple.o == Literal("hello")

    def test_language_literal(self):
        triple = parse_ntriples_line('<http://a> <http://p> "salut"@fr .')
        assert triple.o == Literal("salut", language="fr")

    def test_datatyped_literal(self):
        triple = parse_ntriples_line('<http://a> <http://p> "7"^^<http://int> .')
        assert triple.o == Literal("7", datatype=URI("http://int"))

    def test_escaped_literal(self):
        triple = parse_ntriples_line(r'<http://a> <http://p> "a\"b\nc" .')
        assert triple.o == Literal('a"b\nc')

    def test_comment_and_blank_lines_skipped(self):
        text = "# a comment\n\n<http://a> <http://p> <http://b> .\n"
        assert len(list(parse_ntriples(text))) == 1

    def test_missing_dot_rejected(self):
        with pytest.raises(NTriplesParseError) as info:
            list(parse_ntriples("<http://a> <http://p> <http://b>"))
        assert info.value.line_number == 1

    def test_garbage_rejected(self):
        with pytest.raises(NTriplesParseError):
            list(parse_ntriples("not a triple at all ."))

    def test_literal_subject_rejected(self):
        with pytest.raises(NTriplesParseError):
            list(parse_ntriples('"lit" <http://p> <http://b> .'))


class TestRoundtrip:
    def test_serialize_then_parse(self):
        triples = [
            Triple(URI("http://a"), URI("http://p"), URI("http://b")),
            Triple(BlankNode("n"), URI("http://p"), Literal('tricky "quote"\n')),
            Triple(URI("http://a"), URI("http://q"), Literal("x", language="en")),
            Triple(URI("http://a"), URI("http://r"), Literal("3", datatype=URI("http://int"))),
        ]
        text = serialize_ntriples(triples)
        assert list(parse_ntriples(text)) == triples

    def test_museum_store_roundtrip(self, museum_store):
        text = serialize_ntriples(iter(museum_store))
        parsed = set(parse_ntriples(text))
        assert parsed == set(museum_store)
