"""Unit tests for triple construction and RDF well-formedness."""

import pytest

from repro.rdf.terms import BlankNode, Literal, URI
from repro.rdf.triples import Triple, WellFormednessError

A = URI("http://a")
P = URI("http://p")
B = BlankNode("b")
L = Literal("x")


class TestWellFormedness:
    def test_uri_everywhere_is_fine(self):
        Triple(A, P, A)

    def test_blank_subject_allowed(self):
        Triple(B, P, A)

    def test_literal_object_allowed(self):
        Triple(A, P, L)

    def test_blank_object_allowed(self):
        Triple(A, P, B)

    def test_literal_subject_rejected(self):
        with pytest.raises(WellFormednessError):
            Triple(L, P, A)

    def test_blank_property_rejected(self):
        with pytest.raises(WellFormednessError):
            Triple(A, B, A)

    def test_literal_property_rejected(self):
        with pytest.raises(WellFormednessError):
            Triple(A, L, A)


class TestTripleBehaviour:
    def test_iteration_order(self):
        assert list(Triple(A, P, L)) == [A, P, L]

    def test_as_tuple(self):
        assert Triple(A, P, B).as_tuple() == (A, P, B)

    def test_equality_and_hash(self):
        assert Triple(A, P, L) == Triple(A, P, L)
        assert len({Triple(A, P, L), Triple(A, P, L)}) == 1

    def test_n3(self):
        assert Triple(A, P, L).n3() == '<http://a> <http://p> "x"'
