"""Unit tests for the RDF term model."""

import pytest

from repro.rdf.terms import BlankNode, Literal, URI, is_term


class TestURI:
    def test_equality_is_by_value(self):
        assert URI("http://a") == URI("http://a")
        assert URI("http://a") != URI("http://b")

    def test_hashable(self):
        assert len({URI("http://a"), URI("http://a"), URI("http://b")}) == 2

    def test_n3_rendering(self):
        assert URI("http://a#x").n3() == "<http://a#x>"

    def test_empty_value_rejected(self):
        with pytest.raises(ValueError):
            URI("")

    def test_immutable(self):
        with pytest.raises(AttributeError):
            URI("http://a").value = "http://b"


class TestLiteral:
    def test_plain_literal(self):
        lit = Literal("hello")
        assert lit.n3() == '"hello"'
        assert str(lit) == "hello"

    def test_language_tagged(self):
        assert Literal("bonjour", language="fr").n3() == '"bonjour"@fr'

    def test_datatyped(self):
        lit = Literal("42", datatype=URI("http://int"))
        assert lit.n3() == '"42"^^<http://int>'

    def test_datatype_and_language_exclusive(self):
        with pytest.raises(ValueError):
            Literal("x", datatype=URI("http://int"), language="en")

    def test_escaping_in_n3(self):
        lit = Literal('say "hi"\nplease\t\\ok')
        rendered = lit.n3()
        assert rendered == '"say \\"hi\\"\\nplease\\t\\\\ok"'

    def test_equality_distinguishes_language(self):
        assert Literal("x", language="en") != Literal("x", language="fr")
        assert Literal("x") != Literal("x", language="fr")


class TestBlankNode:
    def test_n3(self):
        assert BlankNode("b1").n3() == "_:b1"

    def test_empty_label_rejected(self):
        with pytest.raises(ValueError):
            BlankNode("")

    def test_distinct_labels_differ(self):
        assert BlankNode("a") != BlankNode("b")


def test_is_term():
    assert is_term(URI("http://a"))
    assert is_term(Literal("x"))
    assert is_term(BlankNode("b"))
    assert not is_term("http://a")
    assert not is_term(42)
    assert not is_term(None)
