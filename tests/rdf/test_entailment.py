"""Unit tests for RDFS saturation (Section 4.1's entailment examples)."""

from repro.rdf.entailment import implicit_triples, saturate, saturation_triples
from repro.rdf.schema import RDFSchema
from repro.rdf.store import TripleStore
from repro.rdf.terms import BlankNode, Literal, URI
from repro.rdf.triples import Triple
from repro.rdf.vocabulary import RDF_TYPE


def u(x: str) -> URI:
    return URI(f"http://t/{x}")


def art_schema() -> RDFSchema:
    """The exact Section 4.1 example schema."""
    schema = RDFSchema()
    schema.add_subclass(u("painting"), u("masterpiece"))
    schema.add_subclass(u("masterpiece"), u("work"))
    schema.add_subproperty(u("hasPainted"), u("hasCreated"))
    schema.add_range(u("hasPainted"), u("painting"))
    schema.add_range(u("hasCreated"), u("masterpiece"))
    return schema


class TestPaperExample:
    def test_section_41_value_propagation(self):
        """(u, hasPainted, _:b) entails hasCreated, and the three types."""
        schema = art_schema()
        blank = BlankNode("b")
        base = {Triple(u("u"), u("hasPainted"), blank)}
        saturated = saturation_triples(base, schema)
        assert Triple(u("u"), u("hasCreated"), blank) in saturated
        assert Triple(blank, RDF_TYPE, u("painting")) in saturated
        assert Triple(blank, RDF_TYPE, u("masterpiece")) in saturated
        assert Triple(blank, RDF_TYPE, u("work")) in saturated

    def test_subclass_chain_closure_on_types(self):
        schema = art_schema()
        base = {Triple(u("x"), RDF_TYPE, u("painting"))}
        saturated = saturation_triples(base, schema)
        assert Triple(u("x"), RDF_TYPE, u("masterpiece")) in saturated
        assert Triple(u("x"), RDF_TYPE, u("work")) in saturated
        assert len(saturated) == 3

    def test_domain_rule(self):
        schema = RDFSchema()
        schema.add_domain(u("driverLicenseNo"), u("person"))
        base = {Triple(u("john"), u("driverLicenseNo"), Literal("12345"))}
        saturated = saturation_triples(base, schema)
        assert Triple(u("john"), RDF_TYPE, u("person")) in saturated

    def test_range_rule_skips_literal_objects(self):
        schema = RDFSchema()
        schema.add_range(u("name"), u("label"))
        base = {Triple(u("x"), u("name"), Literal("Jo"))}
        saturated = saturation_triples(base, schema)
        # A literal cannot be the subject of a type triple.
        assert saturated == base


class TestFixpointBehaviour:
    def test_saturation_is_idempotent(self):
        schema = art_schema()
        base = {
            Triple(u("u"), u("hasPainted"), u("art1")),
            Triple(u("v"), RDF_TYPE, u("painting")),
        }
        once = saturation_triples(base, schema)
        twice = saturation_triples(once, schema)
        assert once == twice

    def test_saturation_contains_input(self):
        schema = art_schema()
        base = {Triple(u("a"), u("hasPainted"), u("b"))}
        assert base <= saturation_triples(base, schema)

    def test_empty_schema_changes_nothing(self):
        base = {Triple(u("a"), u("p"), u("b"))}
        assert saturation_triples(base, RDFSchema()) == base


class TestStoreSaturation:
    def test_saturate_returns_new_store(self):
        schema = art_schema()
        store = TripleStore()
        store.add(Triple(u("a"), u("hasPainted"), u("b")))
        saturated = saturate(store, schema)
        assert saturated is not store
        assert len(store) == 1  # input untouched
        assert len(saturated) == 5  # +hasCreated, +3 type triples

    def test_implicit_triples_excludes_explicit(self):
        schema = art_schema()
        store = TripleStore()
        store.add(Triple(u("a"), u("hasPainted"), u("b")))
        store.add(Triple(u("b"), RDF_TYPE, u("painting")))  # already explicit
        implicit = implicit_triples(store, schema)
        assert Triple(u("b"), RDF_TYPE, u("painting")) not in implicit
        assert Triple(u("a"), u("hasCreated"), u("b")) in implicit

    def test_barton_saturation_grows_store(self, barton_store, barton_schema):
        saturated = saturate(barton_store, barton_schema)
        assert len(saturated) > len(barton_store)
