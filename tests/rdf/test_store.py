"""Unit tests for the indexed triple store, on every storage backend."""

import pytest

from repro.rdf.store import TripleStore
from repro.rdf.terms import Literal, URI
from repro.rdf.triples import Triple
from repro.storage import BACKENDS


def u(x: str) -> URI:
    return URI(f"http://t/{x}")


def populate(store: TripleStore) -> TripleStore:
    store.add(Triple(u("a"), u("p"), u("b")))
    store.add(Triple(u("a"), u("p"), u("c")))
    store.add(Triple(u("a"), u("q"), u("b")))
    store.add(Triple(u("d"), u("p"), u("b")))
    store.add(Triple(u("d"), u("q"), Literal("v")))
    return store


@pytest.fixture(params=BACKENDS)
def store(request) -> TripleStore:
    return populate(TripleStore(backend=request.param))


class TestMutation:
    def test_add_returns_true_only_for_new(self, store):
        assert store.add(Triple(u("x"), u("p"), u("y"))) is True
        assert store.add(Triple(u("x"), u("p"), u("y"))) is False

    def test_len_and_contains(self, store):
        assert len(store) == 5
        assert Triple(u("a"), u("p"), u("b")) in store
        assert Triple(u("a"), u("p"), u("zzz")) not in store

    def test_add_all_counts_new_only(self):
        s = TripleStore()
        triples = [Triple(u("a"), u("p"), u("b"))] * 3
        assert s.add_all(triples) == 1

    def test_remove(self, store):
        assert store.remove(Triple(u("a"), u("p"), u("b"))) is True
        assert len(store) == 4
        assert store.count(s=u("a"), p=u("p")) == 1
        assert store.remove(Triple(u("a"), u("p"), u("b"))) is False

    def test_remove_unknown_term_is_false(self, store):
        assert store.remove(Triple(u("nope"), u("p"), u("b"))) is False


class TestPatternMatching:
    def test_full_scan(self, store):
        assert len(list(store.match())) == 5

    def test_by_subject(self, store):
        assert len(list(store.match(s=u("a")))) == 3

    def test_by_property(self, store):
        assert len(list(store.match(p=u("p")))) == 3

    def test_by_object(self, store):
        assert len(list(store.match(o=u("b")))) == 3

    def test_by_subject_property(self, store):
        assert len(list(store.match(s=u("a"), p=u("p")))) == 2

    def test_by_subject_object(self, store):
        assert len(list(store.match(s=u("a"), o=u("b")))) == 2

    def test_by_property_object(self, store):
        assert len(list(store.match(p=u("p"), o=u("b")))) == 2

    def test_fully_bound(self, store):
        assert len(list(store.match(s=u("a"), p=u("p"), o=u("b")))) == 1
        assert len(list(store.match(s=u("a"), p=u("p"), o=u("zz")))) == 0

    def test_unknown_term_matches_nothing(self, store):
        assert list(store.match(s=u("unknown"))) == []

    def test_literal_object_pattern(self, store):
        assert len(list(store.match(o=Literal("v")))) == 1


class TestCounts:
    def test_count_agrees_with_match(self, store):
        patterns = [
            dict(),
            dict(s=u("a")),
            dict(p=u("p")),
            dict(o=u("b")),
            dict(s=u("a"), p=u("p")),
            dict(s=u("d"), o=Literal("v")),
            dict(p=u("q"), o=u("b")),
            dict(s=u("a"), p=u("p"), o=u("b")),
        ]
        for pattern in patterns:
            assert store.count(**pattern) == len(list(store.match(**pattern)))

    def test_counts_after_removal(self, store):
        store.remove(Triple(u("a"), u("p"), u("c")))
        assert store.count(s=u("a"), p=u("p")) == 1
        assert store.count(p=u("p")) == 2


class TestColumnStatistics:
    def test_distinct_values(self, store):
        assert store.distinct_values("s") == 2  # a, d
        assert store.distinct_values("p") == 2  # p, q
        assert store.distinct_values("o") == 3  # b, c, "v"

    def test_distinct_values_after_removal(self, store):
        store.remove(Triple(u("d"), u("q"), Literal("v")))
        assert store.distinct_values("o") == 2

    def test_column_value_counts(self, store):
        counts = store.column_value_counts("p")
        assert sum(counts.values()) == len(store)

    def test_backend_agrees_with_catalog(self, store):
        # The backend's ground-truth figures must match the catalog's
        # incrementally maintained ones, on every backend.
        store.remove(Triple(u("a"), u("p"), u("c")))
        for column in ("s", "p", "o"):
            assert store.backend.distinct_values(column) == store.distinct_values(
                column
            )
            assert store.backend.column_value_counts(
                column
            ) == store.column_value_counts(column)


def test_copy_is_independent(store):
    clone = store.copy()
    assert len(clone) == len(store)
    clone.add(Triple(u("new"), u("p"), u("b")))
    assert len(clone) == len(store) + 1
    assert Triple(u("new"), u("p"), u("b")) not in store


def test_iteration_yields_decoded_triples(store):
    triples = set(store)
    assert Triple(u("a"), u("p"), u("b")) in triples
    assert len(triples) == 5


class TestIndexBucketCleanup:
    """Memory-backend internals: empty buckets must not linger."""

    @pytest.fixture()
    def memory(self):
        return populate(TripleStore(backend="memory")).backend

    def test_remove_deletes_empty_buckets(self):
        # u("d") subject bucket holds two triples; removing both must
        # delete the bucket itself, not leave an empty set behind.
        store = populate(TripleStore(backend="memory"))
        store.remove(Triple(u("d"), u("p"), u("b")))
        store.remove(Triple(u("d"), u("q"), Literal("v")))
        d_code = store.dictionary.lookup(u("d"))
        assert d_code not in store.backend._idx_s
        v_code = store.dictionary.lookup(Literal("v"))
        assert v_code not in store.backend._idx_o

    def test_churn_does_not_grow_indexes(self):
        s = TripleStore(backend="memory")
        for round_ in range(50):
            triple = Triple(u(f"subject{round_}"), u("p"), u(f"object{round_}"))
            s.add(triple)
            s.remove(triple)
        assert len(s) == 0
        backend = s.backend
        assert backend._idx_s == {}
        assert backend._idx_o == {}
        assert backend._idx_sp == {}
        assert backend._idx_so == {}
        assert backend._idx_po == {}
        # The predicate bucket for u("p") emptied out too.
        assert backend._idx_p == {}

    def test_partial_bucket_survives(self):
        store = populate(TripleStore(backend="memory"))
        store.remove(Triple(u("a"), u("p"), u("b")))
        a_code = store.dictionary.lookup(u("a"))
        assert a_code in store.backend._idx_s  # still holds two triples
        assert store.count(s=u("a")) == 2


class TestCopy:
    def test_copy_preserves_encodings(self, store):
        clone = store.copy()
        for term in (u("a"), u("p"), Literal("v")):
            assert clone.dictionary.lookup(term) == store.dictionary.lookup(term)
        assert set(clone) == set(store)

    def test_copy_shares_no_structures(self, store):
        clone = store.copy()
        clone.remove(Triple(u("a"), u("p"), u("b")))
        assert Triple(u("a"), u("p"), u("b")) in store
        assert clone.count(s=u("a")) == store.count(s=u("a")) - 1
        store.add(Triple(u("fresh"), u("p"), u("b")))
        assert Triple(u("fresh"), u("p"), u("b")) not in clone

    def test_copy_preserves_statistics(self, store):
        clone = store.copy()
        for column in ("s", "p", "o"):
            assert clone.distinct_values(column) == store.distinct_values(column)
        assert clone.average_term_size() == store.average_term_size()

    def test_copy_preserves_backend_kind(self, store):
        assert store.copy().backend_name == store.backend_name

    @pytest.mark.parametrize("target", BACKENDS)
    def test_cross_backend_copy_is_equivalent(self, store, target):
        clone = store.copy(backend=target)
        assert clone.backend_name == target
        assert set(clone) == set(store)
        assert len(clone) == len(store)
        for column in ("s", "p", "o"):
            assert clone.distinct_values(column) == store.distinct_values(column)
        for pattern in (dict(s=u("a")), dict(p=u("p")), dict(o=u("b"))):
            assert clone.count(**pattern) == store.count(**pattern)
        # Mutations stay independent.
        clone.add(Triple(u("only-clone"), u("p"), u("b")))
        assert Triple(u("only-clone"), u("p"), u("b")) not in store


class TestSortedIterators:
    def test_iter_sorted_spo(self, store):
        triples = list(store.iter_sorted("spo"))
        assert len(triples) == len(store)
        assert triples == sorted(triples)

    def test_iter_sorted_ops_orders_by_object_first(self, store):
        triples = list(store.iter_sorted("ops"))
        keys = [(o, p, s) for s, p, o in triples]
        assert keys == sorted(keys)

    def test_match_sorted_restricted_pattern(self, store):
        p_code = store.dictionary.lookup(u("p"))
        matches = list(store.match_sorted((None, p_code, None), "osp"))
        assert len(matches) == 3
        keys = [(o, s) for s, _, o in matches]
        assert keys == sorted(keys)

    def test_sorted_iteration_after_mutation(self, store):
        before = list(store.iter_sorted("spo"))
        store.add(Triple(u("zz"), u("p"), u("zz")))
        after = list(store.iter_sorted("spo"))
        assert len(after) == len(before) + 1

    def test_unknown_order_rejected(self, store):
        with pytest.raises(ValueError):
            list(store.iter_sorted("xyz"))


def test_fresh_store_rejects_non_empty_backend(tmp_path, store):
    path = tmp_path / "full.db"
    store.save(path)
    from repro.storage import SqliteBackend

    with pytest.raises(ValueError, match="non-empty backend"):
        TripleStore(backend=SqliteBackend(path))
