"""Unit tests for the indexed triple store."""

import pytest

from repro.rdf.store import TripleStore
from repro.rdf.terms import Literal, URI
from repro.rdf.triples import Triple


def u(x: str) -> URI:
    return URI(f"http://t/{x}")


@pytest.fixture()
def store() -> TripleStore:
    s = TripleStore()
    s.add(Triple(u("a"), u("p"), u("b")))
    s.add(Triple(u("a"), u("p"), u("c")))
    s.add(Triple(u("a"), u("q"), u("b")))
    s.add(Triple(u("d"), u("p"), u("b")))
    s.add(Triple(u("d"), u("q"), Literal("v")))
    return s


class TestMutation:
    def test_add_returns_true_only_for_new(self, store):
        assert store.add(Triple(u("x"), u("p"), u("y"))) is True
        assert store.add(Triple(u("x"), u("p"), u("y"))) is False

    def test_len_and_contains(self, store):
        assert len(store) == 5
        assert Triple(u("a"), u("p"), u("b")) in store
        assert Triple(u("a"), u("p"), u("zzz")) not in store

    def test_add_all_counts_new_only(self):
        s = TripleStore()
        triples = [Triple(u("a"), u("p"), u("b"))] * 3
        assert s.add_all(triples) == 1

    def test_remove(self, store):
        assert store.remove(Triple(u("a"), u("p"), u("b"))) is True
        assert len(store) == 4
        assert store.count(s=u("a"), p=u("p")) == 1
        assert store.remove(Triple(u("a"), u("p"), u("b"))) is False

    def test_remove_unknown_term_is_false(self, store):
        assert store.remove(Triple(u("nope"), u("p"), u("b"))) is False


class TestPatternMatching:
    def test_full_scan(self, store):
        assert len(list(store.match())) == 5

    def test_by_subject(self, store):
        assert len(list(store.match(s=u("a")))) == 3

    def test_by_property(self, store):
        assert len(list(store.match(p=u("p")))) == 3

    def test_by_object(self, store):
        assert len(list(store.match(o=u("b")))) == 3

    def test_by_subject_property(self, store):
        assert len(list(store.match(s=u("a"), p=u("p")))) == 2

    def test_by_subject_object(self, store):
        assert len(list(store.match(s=u("a"), o=u("b")))) == 2

    def test_by_property_object(self, store):
        assert len(list(store.match(p=u("p"), o=u("b")))) == 2

    def test_fully_bound(self, store):
        assert len(list(store.match(s=u("a"), p=u("p"), o=u("b")))) == 1
        assert len(list(store.match(s=u("a"), p=u("p"), o=u("zz")))) == 0

    def test_unknown_term_matches_nothing(self, store):
        assert list(store.match(s=u("unknown"))) == []

    def test_literal_object_pattern(self, store):
        assert len(list(store.match(o=Literal("v")))) == 1


class TestCounts:
    def test_count_agrees_with_match(self, store):
        patterns = [
            dict(),
            dict(s=u("a")),
            dict(p=u("p")),
            dict(o=u("b")),
            dict(s=u("a"), p=u("p")),
            dict(s=u("d"), o=Literal("v")),
            dict(p=u("q"), o=u("b")),
            dict(s=u("a"), p=u("p"), o=u("b")),
        ]
        for pattern in patterns:
            assert store.count(**pattern) == len(list(store.match(**pattern)))

    def test_counts_after_removal(self, store):
        store.remove(Triple(u("a"), u("p"), u("c")))
        assert store.count(s=u("a"), p=u("p")) == 1
        assert store.count(p=u("p")) == 2


class TestColumnStatistics:
    def test_distinct_values(self, store):
        assert store.distinct_values("s") == 2  # a, d
        assert store.distinct_values("p") == 2  # p, q
        assert store.distinct_values("o") == 3  # b, c, "v"

    def test_distinct_values_after_removal(self, store):
        store.remove(Triple(u("d"), u("q"), Literal("v")))
        assert store.distinct_values("o") == 2

    def test_column_value_counts(self, store):
        counts = store.column_value_counts("p")
        assert sum(counts.values()) == len(store)


def test_copy_is_independent(store):
    clone = store.copy()
    assert len(clone) == len(store)
    clone.add(Triple(u("new"), u("p"), u("b")))
    assert len(clone) == len(store) + 1
    assert Triple(u("new"), u("p"), u("b")) not in store


def test_iteration_yields_decoded_triples(store):
    triples = set(store)
    assert Triple(u("a"), u("p"), u("b")) in triples
    assert len(triples) == 5
