"""Unit tests for dictionary encoding."""

import pytest

from repro.rdf.dictionary import Dictionary
from repro.rdf.terms import Literal, URI


def test_encode_assigns_dense_codes():
    d = Dictionary()
    assert d.encode(URI("http://a")) == 0
    assert d.encode(URI("http://b")) == 1
    assert d.encode(Literal("x")) == 2
    assert len(d) == 3


def test_encode_is_idempotent():
    d = Dictionary()
    code = d.encode(URI("http://a"))
    assert d.encode(URI("http://a")) == code
    assert len(d) == 1


def test_decode_roundtrip():
    d = Dictionary()
    terms = [URI("http://a"), Literal("x", language="en"), URI("http://b")]
    codes = [d.encode(t) for t in terms]
    assert [d.decode(c) for c in codes] == terms


def test_decode_unknown_code_raises():
    d = Dictionary()
    with pytest.raises(KeyError):
        d.decode(0)
    d.encode(URI("http://a"))
    with pytest.raises(KeyError):
        d.decode(5)


def test_lookup_returns_none_for_unknown():
    d = Dictionary()
    assert d.lookup(URI("http://a")) is None
    d.encode(URI("http://a"))
    assert d.lookup(URI("http://a")) == 0


def test_contains():
    d = Dictionary()
    assert URI("http://a") not in d
    d.encode(URI("http://a"))
    assert URI("http://a") in d


def test_non_term_rejected():
    d = Dictionary()
    with pytest.raises(TypeError):
        d.encode("not-a-term")


def test_average_term_size_tracks_rendered_lengths():
    d = Dictionary()
    assert d.average_term_size() == pytest.approx(8.0)  # nominal default
    d.encode(URI("http://abcd"))  # n3: <http://abcd> = 13 chars
    assert d.average_term_size() == pytest.approx(13.0)
    d.encode(Literal("xyz"))  # n3: "xyz" = 5 chars
    assert d.average_term_size() == pytest.approx(9.0)


def test_distinct_literals_by_language_get_distinct_codes():
    d = Dictionary()
    c1 = d.encode(Literal("x"))
    c2 = d.encode(Literal("x", language="en"))
    assert c1 != c2
