"""Unit tests for the RDF Schema model (Table 1 relationships)."""

from repro.rdf.schema import RDFSchema, SchemaKind, SchemaStatement
from repro.rdf.terms import URI
from repro.rdf.triples import Triple
from repro.rdf.vocabulary import RDFS_SUBCLASSOF, RDF_TYPE


def c(x: str) -> URI:
    return URI(f"http://c/{x}")


def p(x: str) -> URI:
    return URI(f"http://p/{x}")


def build_art_schema() -> RDFSchema:
    schema = RDFSchema()
    schema.add_subclass(c("painting"), c("masterpiece"))
    schema.add_subclass(c("masterpiece"), c("work"))
    schema.add_subproperty(p("hasPainted"), p("hasCreated"))
    schema.add_domain(p("hasPainted"), c("painter"))
    schema.add_range(p("hasPainted"), c("painting"))
    schema.add_range(p("hasCreated"), c("masterpiece"))
    return schema


class TestDirectAccessors:
    def test_direct_superclasses(self):
        schema = build_art_schema()
        assert schema.direct_superclasses(c("painting")) == {c("masterpiece")}
        assert schema.direct_superclasses(c("work")) == set()

    def test_direct_subclasses(self):
        schema = build_art_schema()
        assert schema.direct_subclasses(c("masterpiece")) == {c("painting")}

    def test_direct_subproperties(self):
        schema = build_art_schema()
        assert schema.direct_subproperties(p("hasCreated")) == {p("hasPainted")}

    def test_domains_and_ranges(self):
        schema = build_art_schema()
        assert schema.domains(p("hasPainted")) == {c("painter")}
        assert schema.ranges(p("hasPainted")) == {c("painting")}
        assert schema.domains(p("hasCreated")) == set()

    def test_properties_with_domain_and_range(self):
        schema = build_art_schema()
        assert schema.properties_with_domain(c("painter")) == {p("hasPainted")}
        assert schema.properties_with_range(c("painting")) == {p("hasPainted")}
        assert schema.properties_with_range(c("masterpiece")) == {p("hasCreated")}


class TestTransitiveAccessors:
    def test_superclasses_are_transitive_and_strict(self):
        schema = build_art_schema()
        assert schema.superclasses(c("painting")) == {c("masterpiece"), c("work")}
        assert c("painting") not in schema.superclasses(c("painting"))

    def test_subclasses_are_transitive(self):
        schema = build_art_schema()
        assert schema.subclasses(c("work")) == {c("painting"), c("masterpiece")}

    def test_superproperties(self):
        schema = build_art_schema()
        assert schema.superproperties(p("hasPainted")) == {p("hasCreated")}

    def test_cycle_does_not_hang(self):
        schema = RDFSchema()
        schema.add_subclass(c("a"), c("b"))
        schema.add_subclass(c("b"), c("a"))
        assert schema.superclasses(c("a")) == {c("a"), c("b")}


class TestInventory:
    def test_len_counts_statements(self):
        assert len(build_art_schema()) == 6

    def test_duplicate_statement_ignored(self):
        schema = build_art_schema()
        assert schema.add_subclass(c("painting"), c("masterpiece")) is False
        assert len(schema) == 6

    def test_classes_and_properties(self):
        schema = build_art_schema()
        assert c("painting") in schema.classes
        assert c("painter") in schema.classes  # via domain typing
        assert p("hasPainted") in schema.properties
        assert p("hasCreated") in schema.properties

    def test_statements_filter_by_kind(self):
        schema = build_art_schema()
        assert len(schema.statements(SchemaKind.SUBCLASS)) == 2
        assert len(schema.statements(SchemaKind.RANGE)) == 2
        assert len(schema.statements()) == 6


class TestTripleInterop:
    def test_statement_as_triple(self):
        st = SchemaStatement(SchemaKind.SUBCLASS, c("a"), c("b"))
        assert st.as_triple() == Triple(c("a"), RDFS_SUBCLASSOF, c("b"))

    def test_from_triples_ignores_data(self):
        triples = [
            Triple(c("a"), RDFS_SUBCLASSOF, c("b")),
            Triple(c("x"), RDF_TYPE, c("a")),  # data, not schema
        ]
        schema = RDFSchema.from_triples(triples)
        assert len(schema) == 1
        assert schema.direct_superclasses(c("a")) == {c("b")}

    def test_roundtrip_through_triples(self):
        schema = build_art_schema()
        rebuilt = RDFSchema.from_triples(schema.triples())
        assert set(rebuilt.statements()) == set(schema.statements())
