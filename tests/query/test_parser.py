"""Unit tests for the datalog-style query parser."""

import pytest

from repro.query.cq import Variable
from repro.query.parser import QuerySyntaxError, parse_queries, parse_query
from repro.rdf.terms import Literal, URI
from repro.rdf.vocabulary import RDF_TYPE, RDFS_SUBCLASSOF


class TestTermForms:
    def test_uppercase_token_is_variable(self):
        query = parse_query("q(X) :- t(X, p, Y)")
        assert query.head == (Variable("X"),)
        assert query.atoms[0].o == Variable("Y")

    def test_question_mark_variable(self):
        query = parse_query("q(?x) :- t(?x, p, ?y)")
        assert query.head == (Variable("x"),)

    def test_lowercase_token_is_namespaced_uri(self):
        query = parse_query("q(X) :- t(X, hasPainted, starryNight)")
        assert query.atoms[0].p == URI("http://example.org/hasPainted")
        assert query.atoms[0].o == URI("http://example.org/starryNight")

    def test_angle_bracket_uri(self):
        query = parse_query("q(X) :- t(X, <http://other/p>, Y)")
        assert query.atoms[0].p == URI("http://other/p")

    def test_rdf_prefix(self):
        query = parse_query("q(X) :- t(X, rdf:type, painting)")
        assert query.atoms[0].p == RDF_TYPE

    def test_rdfs_prefix(self):
        query = parse_query("q(X) :- t(X, rdfs:subClassOf, Y)")
        assert query.atoms[0].p == RDFS_SUBCLASSOF

    def test_custom_prefix(self):
        query = parse_query(
            "q(X) :- t(X, dc:title, Y)", prefixes={"dc": "http://purl.org/dc/"}
        )
        assert query.atoms[0].p == URI("http://purl.org/dc/title")

    def test_unknown_prefix_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("q(X) :- t(X, nope:title, Y)")

    def test_quoted_literal(self):
        query = parse_query('q(X) :- t(X, title, "Starry Night")')
        assert query.atoms[0].o == Literal("Starry Night")

    def test_blank_node_becomes_shared_variable(self):
        query = parse_query("q(X) :- t(X, p, _:b), t(_:b, q, Y)")
        assert query.atoms[0].o == query.atoms[1].s
        assert isinstance(query.atoms[0].o, Variable)

    def test_custom_namespace(self):
        query = parse_query("q(X) :- t(X, p, c)", namespace="http://my/")
        assert query.atoms[0].p == URI("http://my/p")


class TestQueryStructure:
    def test_running_example(self):
        query = parse_query(
            "q1(X, Z) :- t(X, hasPainted, starryNight), t(X, isParentOf, Y), "
            "t(Y, hasPainted, Z)"
        )
        assert query.name == "q1"
        assert len(query) == 3
        assert query.head == (Variable("X"), Variable("Z"))

    def test_missing_body_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("q(X) :- ")

    def test_not_a_query_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("SELECT * FROM t")

    def test_wrong_atom_arity_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("q(X) :- t(X, p)")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("q(X) :- t(X, p, Y) extra stuff")

    def test_unsafe_query_rejected(self):
        with pytest.raises(ValueError):
            parse_query("q(W) :- t(X, p, Y)")


class TestWorkloadParsing:
    def test_multiple_queries(self):
        text = """
        # workload
        q1(X) :- t(X, p, c)
        q2(X, Y) :- t(X, p, Y), t(Y, q, d)
        """
        queries = parse_queries(text)
        assert [q.name for q in queries] == ["q1", "q2"]

    def test_multiline_query(self):
        text = """
        q1(X, Z) :- t(X, hasPainted, starryNight),
                    t(X, isParentOf, Y),
                    t(Y, hasPainted, Z)
        q2(A) :- t(A, p, c)
        """
        queries = parse_queries(text)
        assert len(queries) == 2
        assert len(queries[0]) == 3
