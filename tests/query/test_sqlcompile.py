"""Unit tests for whole-plan SQL pushdown (repro.engine.sqlcompile).

Covers the compilation scheme (statement text, bound parameters, head
slots), the fallback shapes that must stay on the interpreted operator
tree, and the prepared-SQL cache lifecycle across store mutations.
"""

import pytest

from repro.engine import (
    FIXED_ENGINES,
    SQL_PUSHDOWN,
    choose_engine,
    compile_query,
    plan_pushdown,
    run_query,
)
from repro.engine import sqlcompile
from repro.query.cq import Atom, ConjunctiveQuery, Variable
from repro.query.evaluation import evaluate, evaluate_greedy
from repro.query.parser import parse_query
from repro.rdf.store import TripleStore
from repro.rdf.terms import Literal, URI
from repro.rdf.triples import Triple

from tests.conftest import ex

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


@pytest.fixture
def sqlite_museum(museum_store):
    store = museum_store.copy(backend="sqlite")
    yield store
    store.backend.close()


def _two_hop():
    return parse_query(
        "q(X, Z) :- t(X, isParentOf, Y), t(Y, hasPainted, Z)",
        namespace="http://example.org/",
    )


class TestCompileQuery:
    def test_statement_text_and_params(self, sqlite_museum):
        compiled = compile_query(_two_hop(), sqlite_museum)
        assert compiled.sql == (
            "SELECT DISTINCT t0.s, t1.o\n"
            "FROM triples t0, triples t1\n"
            "WHERE t0.p = ? AND t1.s = t0.o AND t1.p = ?"
        )
        assert compiled.params == (
            sqlite_museum.encode_term(ex("isParentOf")),
            sqlite_museum.encode_term(ex("hasPainted")),
        )
        assert compiled.head_slots == (0, 1)
        assert compiled.head_constants == (None, None)
        assert compiled.restricted_slots == ()

    def test_execution_matches_reference(self, sqlite_museum):
        compiled = compile_query(_two_hop(), sqlite_museum)
        assert compiled.execute(sqlite_museum) == evaluate_greedy(
            _two_hop(), sqlite_museum
        )

    def test_describe_inlines_the_codes(self, sqlite_museum):
        compiled = compile_query(_two_hop(), sqlite_museum)
        text = compiled.describe()
        assert "?" not in text
        assert str(compiled.params[0]) in text

    def test_unknown_constant_is_provably_empty(self, sqlite_museum):
        query = parse_query(
            "q(X) :- t(X, <http://example.org/neverSeen>, Y)"
        )
        compiled = compile_query(query, sqlite_museum)
        assert compiled.sql is None
        assert compiled.execute(sqlite_museum) == set()
        assert "EMPTY" in compiled.describe()

    def test_constant_head_terms_are_reattached(self, sqlite_museum):
        query = ConjunctiveQuery(
            (ex("tag"), X),
            (Atom(X, ex("hasPainted"), Y),),
            name="q",
        )
        compiled = compile_query(query, sqlite_museum)
        assert compiled.head_slots == (None, 0)
        assert compiled.head_constants[0] == ex("tag")
        assert compiled.execute(sqlite_museum) == evaluate_greedy(
            query, sqlite_museum
        )

    def test_boolean_query_compiles_to_existence_test(self, sqlite_museum):
        query = ConjunctiveQuery((), (Atom(X, ex("hasPainted"), Y),), name="q")
        compiled = compile_query(query, sqlite_museum)
        assert compiled.sql.startswith("SELECT 1\n")
        assert compiled.sql.endswith("LIMIT 1")
        assert compiled.execute(sqlite_museum) == {()}

    def test_self_join_atom_becomes_intra_row_equality(self, sqlite_museum):
        query = ConjunctiveQuery((X,), (Atom(X, ex("isParentOf"), X),), name="q")
        compiled = compile_query(query, sqlite_museum)
        assert "t0.o = t0.s" in compiled.sql
        assert compiled.execute(sqlite_museum) == set()

    def test_restricted_object_variable_widens_projection(self, sqlite_museum):
        # Y only occurs in object position, so SQL cannot prove it
        # non-literal: it is appended to the SELECT and filtered here.
        query = ConjunctiveQuery(
            (X,),
            (Atom(X, ex("title"), Y),),
            name="q",
            non_literal=frozenset({Y}),
        )
        compiled = compile_query(query, sqlite_museum)
        assert compiled.restricted_slots == (1,)
        assert compiled.execute(sqlite_museum) == set()  # titles are literals
        assert compiled.execute(sqlite_museum) == evaluate_greedy(
            query, sqlite_museum
        )

    def test_subject_occurrence_implies_non_literal(self, sqlite_museum):
        # X also occurs as a subject: well-formed RDF already keeps it
        # off literals, so the projection is not widened.
        query = ConjunctiveQuery(
            (Y,),
            (Atom(Y, ex("isParentOf"), X), Atom(X, ex("hasPainted"), Z)),
            name="q",
            non_literal=frozenset({X}),
        )
        compiled = compile_query(query, sqlite_museum)
        assert compiled.restricted_slots == ()
        assert compiled.execute(sqlite_museum) == evaluate_greedy(
            query, sqlite_museum
        )


class TestFallbackShapes:
    def test_too_many_atoms_fall_back(self, sqlite_museum):
        atom = Atom(X, ex("hasPainted"), Y)
        body = (atom,) * (sqlcompile.MAX_PUSHDOWN_TABLES + 1)
        query = ConjunctiveQuery((X,), body, name="q")
        assert compile_query(query, sqlite_museum) is None
        assert plan_pushdown(query, sqlite_museum) is None
        # The interpreted fallback still answers it.
        assert run_query(query, sqlite_museum) == evaluate_greedy(
            query, sqlite_museum
        )

    def test_too_many_params_fall_back(self, sqlite_museum, monkeypatch):
        # The 60-table ceiling caps constants at 180, so the parameter
        # budget is defensive; lift the table limit to exercise it.
        monkeypatch.setattr(sqlcompile, "MAX_PUSHDOWN_TABLES", 10_000)
        atom = Atom(ex("vanGogh"), ex("hasPainted"), ex("starryNight"))
        body = (atom,) * (sqlcompile.MAX_PUSHDOWN_PARAMS // 3 + 1)
        query = ConjunctiveQuery((), body, name="q")
        assert compile_query(query, sqlite_museum) is None

    def test_memory_backend_refuses_sql_plans(self, museum_store):
        assert not museum_store.backend.supports_sql_plans
        with pytest.raises(NotImplementedError):
            museum_store.backend.execute_sql_plan("SELECT 1")
        assert plan_pushdown(_two_hop(), museum_store) is None
        assert choose_engine(_two_hop(), museum_store) != SQL_PUSHDOWN

    def test_routes_that_must_stay_interpreted(self, sqlite_museum, monkeypatch):
        query = _two_hop()
        expected = evaluate_greedy(query, sqlite_museum)
        monkeypatch.setattr(
            sqlite_museum.backend,
            "execute_sql_plan",
            lambda *a, **k: pytest.fail("pushdown route taken"),
        )
        for engine in FIXED_ENGINES:  # explicit engines are a baseline
            assert evaluate(query, sqlite_museum, engine=engine) == expected
        # pushdown=False is the ablation switch.
        assert evaluate(query, sqlite_museum, pushdown=False) == expected
        # The tuple-at-a-time path predates batching and stays as-is.
        assert evaluate(query, sqlite_museum, batch_size=None) == expected

    def test_auto_route_uses_pushdown(self, sqlite_museum):
        query = _two_hop()
        assert choose_engine(query, sqlite_museum) == SQL_PUSHDOWN
        assert evaluate(query, sqlite_museum) == evaluate_greedy(
            query, sqlite_museum
        )

    def test_choose_engine_reports_interpreted_choice(self, sqlite_museum):
        # pushdown=False asks for the strategy the operator-tree
        # fallback compiles (what --explain shows on the tuple path).
        from repro.engine import HYBRID

        query = _two_hop()
        interpreted = choose_engine(query, sqlite_museum, pushdown=False)
        assert interpreted in FIXED_ENGINES + (HYBRID,)


class TestPreparedSqlCache:
    def test_compiled_plan_is_cached(self, sqlite_museum):
        query = _two_hop()
        first = plan_pushdown(query, sqlite_museum)
        assert first is not None
        assert plan_pushdown(query, sqlite_museum) is first

    def test_ineligible_shape_is_cached(self, sqlite_museum):
        atom = Atom(X, ex("hasPainted"), Y)
        body = (atom,) * (sqlcompile.MAX_PUSHDOWN_TABLES + 1)
        query = ConjunctiveQuery((X,), body, name="q")
        assert plan_pushdown(query, sqlite_museum) is None
        assert plan_pushdown(query, sqlite_museum) is None

    def test_mutation_invalidates_compiled_plans(self, sqlite_museum):
        query = _two_hop()
        first = plan_pushdown(query, sqlite_museum)
        sqlite_museum.add(Triple(ex("x"), ex("isParentOf"), ex("y")))
        second = plan_pushdown(query, sqlite_museum)
        assert second is not None and second is not first

    def test_empty_compilation_revalidated_after_mutation(self):
        # A provably-empty plan (unknown constant) must not outlive the
        # insertion that introduces the constant.
        store = TripleStore(backend="sqlite")
        try:
            prop = URI("http://e/p")
            query = ConjunctiveQuery((X,), (Atom(X, prop, Y),), name="q")
            store.add(Triple(URI("http://e/a"), URI("http://e/q"), Literal("v")))
            assert evaluate(query, store) == set()
            store.add(Triple(URI("http://e/a"), prop, URI("http://e/b")))
            assert evaluate(query, store) == {(URI("http://e/a"),)}
            assert evaluate(query, store) == evaluate_greedy(query, store)
        finally:
            store.backend.close()

    def test_removal_invalidates_compiled_plans(self, sqlite_museum):
        query = _two_hop()
        before = evaluate(query, sqlite_museum)
        assert before == evaluate_greedy(query, sqlite_museum)
        sqlite_museum.remove(
            Triple(ex("vanGogh"), ex("isParentOf"), ex("vincentW"))
        )
        after = evaluate(query, sqlite_museum)
        assert after == evaluate_greedy(query, sqlite_museum)
        assert after < before
