"""Unit tests for conjunctive-query evaluation over the store."""

from repro.query.cq import Atom, ConjunctiveQuery, UnionQuery, Variable
from repro.query.evaluation import count_answers, evaluate, evaluate_union
from repro.query.parser import parse_query
from repro.rdf.store import TripleStore
from repro.rdf.triples import Triple

from tests.conftest import ex

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


class TestSingleAtom:
    def test_all_variables_scans_everything(self, museum_store):
        query = ConjunctiveQuery((X, Y, Z), (Atom(X, Y, Z),))
        assert len(evaluate(query, museum_store)) == len(museum_store)

    def test_bound_property(self, museum_store):
        query = parse_query("q(X, Y) :- t(X, hasPainted, Y)")
        answers = evaluate(query, museum_store)
        assert (ex("vanGogh"), ex("starryNight")) in answers
        assert len(answers) == 6

    def test_fully_bound_pattern(self, museum_store):
        query = parse_query("q(X) :- t(X, hasPainted, starryNight)")
        assert evaluate(query, museum_store) == {(ex("vanGogh"),)}

    def test_unknown_constant_yields_empty(self, museum_store):
        query = parse_query("q(X) :- t(X, neverSeenProperty, Y)")
        assert evaluate(query, museum_store) == set()


class TestJoins:
    def test_running_example(self, museum_store, q_painters):
        answers = evaluate(q_painters, museum_store)
        assert answers == {(ex("vanGogh"), ex("sketch1"))}

    def test_two_hop_chain(self, museum_store):
        query = parse_query(
            "q(X, W) :- t(X, isParentOf, Y), t(Y, hasPainted, Z), "
            "t(Z, rdf:type, W)"
        )
        answers = evaluate(query, museum_store)
        assert (ex("vanGogh"), ex("sketch")) in answers
        assert (ex("bruegelSr"), ex("painting")) in answers

    def test_star_join(self, museum_store):
        query = parse_query(
            "q(X) :- t(X, hasPainted, Y), t(X, isParentOf, Z), "
            "t(X, rdf:type, painter)"
        )
        answers = evaluate(query, museum_store)
        assert answers == {(ex("vanGogh"),), (ex("bruegelSr"),)}

    def test_repeated_variable_in_atom(self):
        store = TripleStore()
        store.add(Triple(ex("a"), ex("p"), ex("a")))  # self loop
        store.add(Triple(ex("a"), ex("p"), ex("b")))
        query = ConjunctiveQuery((X,), (Atom(X, ex("p"), X),))
        assert evaluate(query, store) == {(ex("a"),)}

    def test_existential_projection(self, museum_store):
        query = parse_query("q(X) :- t(X, isParentOf, Y), t(Y, hasPainted, Z)")
        answers = evaluate(query, museum_store)
        assert answers == {(ex("vanGogh"),), (ex("bruegelSr"),)}

    def test_empty_join(self, museum_store):
        query = parse_query("q(X) :- t(X, isParentOf, Y), t(Y, isParentOf, Z)")
        assert evaluate(query, museum_store) == set()


class TestHeadShapes:
    def test_constant_in_head(self, museum_store):
        query = ConjunctiveQuery(
            (X, ex("marker")), (Atom(X, ex("hasPainted"), ex("starryNight")),)
        )
        assert evaluate(query, museum_store) == {(ex("vanGogh"), ex("marker"))}

    def test_empty_head_boolean_semantics(self, museum_store):
        query = ConjunctiveQuery((), (Atom(X, ex("hasPainted"), ex("starryNight")),))
        assert evaluate(query, museum_store) == {()}
        empty = ConjunctiveQuery((), (Atom(X, ex("hasPainted"), ex("nothing")),))
        assert evaluate(empty, museum_store) == set()

    def test_duplicate_head_variable(self, museum_store):
        query = ConjunctiveQuery((X, X), (Atom(X, ex("hasPainted"), ex("starryNight")),))
        assert evaluate(query, museum_store) == {(ex("vanGogh"), ex("vanGogh"))}


class TestUnion:
    def test_union_dedups(self, museum_store):
        q1 = parse_query("q(X) :- t(X, hasPainted, Y)")
        q2 = parse_query("q(X) :- t(X, rdf:type, painter)")
        union = UnionQuery((q1, q2))
        answers = evaluate_union(union, museum_store)
        direct = evaluate(q1, museum_store) | evaluate(q2, museum_store)
        assert answers == direct

    def test_union_accepts_plain_iterable(self, museum_store):
        q1 = parse_query("q(X) :- t(X, hasPainted, Y)")
        assert evaluate_union([q1], museum_store) == evaluate(q1, museum_store)


def test_count_answers(museum_store):
    query = parse_query("q(X, Y) :- t(X, hasPainted, Y)")
    assert count_answers(query, museum_store) == 6
