"""Unit tests for containment, minimization, isomorphism and canonical
forms — the Chandra–Merlin machinery View Fusion depends on."""

from repro.query.cq import Atom, ConjunctiveQuery, Variable
from repro.query.containment import (
    canonical_form,
    canonical_rename,
    containment_mapping,
    equivalent,
    find_isomorphism,
    is_contained_in,
    is_isomorphic,
    is_minimal,
    minimize,
)
from repro.rdf.terms import URI

X, Y, Z, W, V = (Variable(n) for n in "XYZWV")
P, Q, C = URI("http://p"), URI("http://q"), URI("http://c")


def cq(head, atoms, name="q"):
    return ConjunctiveQuery(tuple(head), tuple(atoms), name=name)


class TestContainment:
    def test_identity_mapping(self):
        q = cq([X], [Atom(X, P, Y)])
        assert containment_mapping(q, q) is not None

    def test_more_specific_contained_in_more_general(self):
        general = cq([X], [Atom(X, P, Y)])
        specific = cq([X], [Atom(X, P, C)])
        assert is_contained_in(specific, general)
        assert not is_contained_in(general, specific)

    def test_extra_atom_means_contained(self):
        small = cq([X], [Atom(X, P, Y)])
        big = cq([X], [Atom(X, P, Y), Atom(X, Q, Z)])
        assert is_contained_in(big, small)
        assert not is_contained_in(small, big)

    def test_head_positions_must_correspond(self):
        q1 = cq([X, Y], [Atom(X, P, Y)])
        q2 = cq([Y, X], [Atom(X, P, Y)])  # swapped head
        assert containment_mapping(q1, q1) is not None
        # q2's head maps (Y,X) onto (X,Y): needs the atom reversed, absent.
        assert not is_contained_in(q1, q2) or not is_contained_in(q2, q1)

    def test_arity_mismatch(self):
        q1 = cq([X], [Atom(X, P, Y)])
        q2 = cq([X, Y], [Atom(X, P, Y)])
        assert containment_mapping(q1, q2) is None

    def test_equivalence_up_to_renaming(self):
        q1 = cq([X], [Atom(X, P, Y), Atom(Y, Q, Z)])
        q2 = cq([W], [Atom(W, P, V), Atom(V, Q, X)])
        assert equivalent(q1, q2)

    def test_constant_head_containment(self):
        q1 = cq([X, C], [Atom(X, P, C)])
        q2 = cq([X, C], [Atom(X, P, C)])
        assert equivalent(q1, q2)


class TestMinimization:
    def test_redundant_general_atom_removed(self):
        # t(X,P,Y) is subsumed by t(X,P,C) via Y -> C (Y not in head).
        query = cq([X], [Atom(X, P, C), Atom(X, P, Y)])
        minimized = minimize(query)
        assert len(minimized) == 1
        assert equivalent(minimized, query)

    def test_minimal_query_untouched(self):
        query = cq([X, Z], [Atom(X, P, Y), Atom(Y, Q, Z)])
        assert len(minimize(query)) == 2
        assert is_minimal(query)

    def test_head_variable_protects_atom(self):
        # Y is in the head, so t(X,P,Y) cannot fold onto t(X,P,C).
        query = cq([X, Y], [Atom(X, P, C), Atom(X, P, Y)])
        assert len(minimize(query)) == 2

    def test_duplicate_atoms_collapse(self):
        query = cq([X], [Atom(X, P, Y), Atom(X, P, Y)])
        assert len(minimize(query)) == 1

    def test_chain_with_shortcut(self):
        # A 2-chain plus a general shortcut chain that folds onto it.
        query = cq(
            [X, Z],
            [Atom(X, P, Y), Atom(Y, P, Z), Atom(X, P, W), Atom(W, P, Z)],
        )
        minimized = minimize(query)
        assert len(minimized) == 2
        assert equivalent(minimized, query)


class TestIsomorphism:
    def test_renamed_bodies_isomorphic(self):
        q1 = cq([X], [Atom(X, P, Y), Atom(Y, Q, C)])
        q2 = cq([W], [Atom(W, P, V), Atom(V, Q, C)])
        mapping = find_isomorphism(q1, q2)
        assert mapping == {W: X, V: Y}

    def test_different_constants_not_isomorphic(self):
        q1 = cq([X], [Atom(X, P, C)])
        q2 = cq([X], [Atom(X, Q, C)])
        assert not is_isomorphic(q1, q2)

    def test_homomorphic_but_not_isomorphic(self):
        # q2 folds onto q1 but has more atoms: not isomorphic.
        q1 = cq([X], [Atom(X, P, Y)])
        q2 = cq([X], [Atom(X, P, Y), Atom(X, P, Z)])
        assert not is_isomorphic(q1, q2)

    def test_variable_to_constant_never_isomorphic(self):
        q1 = cq([X], [Atom(X, P, C)])
        q2 = cq([X], [Atom(X, P, Y)])
        assert not is_isomorphic(q1, q2)
        assert not is_isomorphic(q2, q1)

    def test_match_heads_option(self):
        q1 = cq([X, Y], [Atom(X, P, Y)])
        q2 = cq([V, W], [Atom(V, P, W)])
        q3 = cq([W, V], [Atom(V, P, W)])  # head reversed
        assert is_isomorphic(q1, q2, match_heads=True)
        assert is_isomorphic(q1, q3)  # bodies only
        assert not is_isomorphic(q1, q3, match_heads=True)


class TestCanonicalForm:
    def test_invariant_under_renaming(self):
        q1 = cq([X, Z], [Atom(X, P, Y), Atom(Y, Q, Z)])
        q2 = q1.substitute({X: W, Y: V, Z: X})
        assert canonical_form(q1) == canonical_form(q2)

    def test_invariant_under_atom_reordering(self):
        q1 = cq([X], [Atom(X, P, Y), Atom(Y, Q, C)])
        q2 = cq([X], [Atom(Y, Q, C), Atom(X, P, Y)])
        assert canonical_form(q1) == canonical_form(q2)

    def test_head_distinguishes(self):
        q1 = cq([X], [Atom(X, P, Y)])
        q2 = cq([Y], [Atom(X, P, Y)])
        assert canonical_form(q1) != canonical_form(q2)
        assert canonical_form(q1, include_head=False) == canonical_form(
            q2, include_head=False
        )

    def test_different_structures_differ(self):
        chain = cq([X], [Atom(X, P, Y), Atom(Y, P, Z)])
        star = cq([X], [Atom(X, P, Y), Atom(X, P, Z)])
        assert canonical_form(chain) != canonical_form(star)

    def test_symmetric_star_is_fast_and_stable(self):
        atoms = [Atom(X, P, Variable(f"O{i}")) for i in range(8)]
        q1 = cq([X], atoms)
        q2 = cq([X], list(reversed(atoms)))
        assert canonical_form(q1) == canonical_form(q2)

    def test_canonical_rename_is_equivalent_and_stable(self):
        q = cq([X, Z], [Atom(X, P, Y), Atom(Y, Q, Z)])
        renamed = canonical_rename(q)
        assert equivalent(q, renamed)
        assert canonical_form(q) == canonical_form(renamed)
        assert canonical_rename(renamed) == renamed
