"""Unit tests for the multi-query optimizer (repro.engine.mqo).

Covers subtree fingerprinting (isomorphic prefixes unify, distinct ones
never collide), the materialization cost gate, shared execution parity
with independent evaluation, the whole-union ``SELECT ... UNION``
pushdown (statement text, shared CTEs, NULL padding, the head-constant
overlay), and the union-level prepared-plan cache lifecycle — identity,
negative caching and mutation invalidation mirroring the single-query
pushdown cache tests.
"""

import pytest

from repro.engine import (
    MATERIALIZE_COST_FACTOR,
    describe_union_sharing,
    evaluate_union_shared,
    plan_batch,
    plan_union_pushdown,
    run_query,
    run_query_batch,
    union_signature,
)
from repro.engine.mqo import decode_images
from repro.query.containment import canonical_form, canonical_labeling
from repro.query.cq import Atom, ConjunctiveQuery, Variable
from repro.query.evaluation import evaluate_greedy, evaluate_union
from repro.query.parser import parse_query
from repro.rdf.store import TripleStore
from repro.rdf.triples import Triple

from tests.conftest import ex

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


@pytest.fixture
def sqlite_museum(museum_store):
    store = museum_store.copy(backend="sqlite")
    yield store
    store.backend.close()


def _chain():
    return parse_query("qa(X, Z) :- t(X, isParentOf, Y), t(Y, hasPainted, Z)")


def _chain_renamed():
    return parse_query("qr(A, C) :- t(A, isParentOf, B), t(B, hasPainted, C)")


def _chain_typed():
    return parse_query(
        "qb(X, Z) :- t(X, isParentOf, Y), t(Y, hasPainted, Z), "
        "t(Z, rdf:type, painting)"
    )


def _headless_key(body, non_literal=frozenset()):
    sub = ConjunctiveQuery((), tuple(body), name="k", non_literal=non_literal)
    return canonical_labeling(sub, include_head=False)[0]


def _union_reference(disjuncts, store):
    answers = set()
    for disjunct in disjuncts:
        answers |= evaluate_greedy(disjunct, store)
    return answers


class TestFingerprints:
    def test_isomorphic_prefixes_unify(self, museum_store):
        batch = plan_batch([_chain(), _chain_renamed()], museum_store)
        assert len(batch.plans) == 2
        first, second = batch.plans
        assert first.prefixes[-1].key == second.prefixes[-1].key
        assert len(batch.nodes) == 1
        assert batch.nodes[0].consumers == 2
        assert batch.nodes[0].length == 2

    def test_different_constants_do_not_collide(self):
        a = _headless_key([Atom(X, ex("hasPainted"), ex("starryNight"))])
        b = _headless_key([Atom(X, ex("hasPainted"), ex("sunflowers"))])
        assert a != b

    def test_different_restrictions_do_not_collide(self):
        body = [Atom(X, ex("isParentOf"), Y), Atom(Y, ex("hasPainted"), Z)]
        assert _headless_key(body) != _headless_key(
            body, non_literal=frozenset({Z})
        )

    def test_different_structure_does_not_collide(self):
        path = [Atom(X, ex("isParentOf"), Y), Atom(Y, ex("isParentOf"), Z)]
        fork = [Atom(X, ex("isParentOf"), Y), Atom(X, ex("isParentOf"), Z)]
        assert _headless_key(path) != _headless_key(fork)

    def test_isomorphic_bodies_collide_regardless_of_names(self):
        a = [Atom(X, ex("isParentOf"), Y), Atom(Y, ex("hasPainted"), Z)]
        b = [
            Atom(Variable("P"), ex("isParentOf"), Variable("Q")),
            Atom(Variable("Q"), ex("hasPainted"), Variable("R")),
        ]
        assert _headless_key(a) == _headless_key(b)

    def test_labeling_form_matches_canonical_form(self):
        query = _chain_typed()
        form, assignment = canonical_labeling(query)
        assert form == canonical_form(query)
        indices = sorted(assignment.values())
        assert set(assignment) == query.variables()
        assert indices == list(range(len(indices)))


class TestCostGate:
    def test_cheap_scan_with_two_consumers_stays_unshared(self, museum_store):
        body = (Atom(X, ex("isParentOf"), Y),)
        queries = [
            ConjunctiveQuery((X,), body, name="qc"),
            ConjunctiveQuery((Y,), body, name="qd"),
        ]
        assert plan_batch(queries, museum_store).nodes == ()

    def test_same_scan_with_many_consumers_crosses_gate(self, museum_store):
        body = (Atom(X, ex("isParentOf"), Y),)
        heads = [(X,), (Y,), (X, Y), (Y, X)]
        queries = [
            ConjunctiveQuery(head, body, name=f"q{i}")
            for i, head in enumerate(heads)
        ]
        batch = plan_batch(queries, museum_store)
        assert len(batch.nodes) == 1
        node = batch.nodes[0]
        assert node.length == 1
        assert node.consumers == 4

    def test_chosen_nodes_satisfy_the_gate_inequality(self, museum_store):
        batch = plan_batch([_chain(), _chain_typed()], museum_store)
        assert batch.nodes
        for node in batch.nodes:
            assert (node.consumers - 1) * node.est_cost > (
                MATERIALIZE_COST_FACTOR * node.est_rows
            )

    def test_sharing_summary_counts_consuming_queries(self, museum_store):
        batch = plan_batch([_chain(), _chain_typed()], museum_store)
        nodes, consuming = batch.sharing_summary()
        assert nodes == 1
        assert consuming == 2


class TestDagCache:
    def test_batch_plan_is_cached(self, sqlite_museum):
        queries = [_chain(), _chain_typed()]
        first = plan_batch(queries, sqlite_museum)
        assert plan_batch(queries, sqlite_museum) is first

    def test_explicit_statistics_bypass_the_cache(self, museum_store):
        from repro.selection.statistics import StoreStatistics

        queries = [_chain(), _chain_typed()]
        cached = plan_batch(queries, museum_store)
        fresh = plan_batch(
            queries, museum_store, statistics=StoreStatistics(museum_store)
        )
        assert fresh is not cached

    def test_mutation_invalidates_batch_plans(self, sqlite_museum):
        queries = [_chain(), _chain_typed()]
        first = plan_batch(queries, sqlite_museum)
        sqlite_museum.add(Triple(ex("x"), ex("isParentOf"), ex("y")))
        second = plan_batch(queries, sqlite_museum)
        assert second is not first


class TestSharedExecution:
    def test_union_parity_on_memory(self, museum_store):
        disjuncts = [_chain(), _chain_typed(), _chain_renamed()]
        expected = _union_reference(disjuncts, museum_store)
        assert evaluate_union(disjuncts, museum_store) == expected
        assert evaluate_union(disjuncts, museum_store, shared=False) == expected

    def test_union_parity_on_sqlite(self, sqlite_museum):
        disjuncts = [_chain(), _chain_typed()]
        expected = _union_reference(disjuncts, sqlite_museum)
        assert evaluate_union(disjuncts, sqlite_museum) == expected
        assert (
            evaluate_union(disjuncts, sqlite_museum, pushdown=False) == expected
        )
        assert (
            evaluate_union(disjuncts, sqlite_museum, shared=False) == expected
        )

    def test_batch_matches_individual_runs(self, museum_store):
        queries = [
            _chain(),
            _chain_typed(),
            parse_query("qs(X) :- t(X, rdf:type, painter)"),
        ]
        expected = [run_query(query, museum_store) for query in queries]
        assert run_query_batch(queries, museum_store) == expected
        assert run_query_batch(queries, museum_store, shared=False) == expected
        assert (
            run_query_batch(queries, museum_store, engine="hash") == expected
        )

    def test_batch_matches_individual_runs_on_sqlite(self, sqlite_museum):
        queries = [_chain(), _chain_typed()]
        expected = [run_query(query, sqlite_museum) for query in queries]
        assert run_query_batch(queries, sqlite_museum) == expected
        assert (
            run_query_batch(queries, sqlite_museum, pushdown=False) == expected
        )

    def test_duplicate_queries_are_answered_once(self, museum_store):
        query = _chain()
        results = run_query_batch([query, _chain_typed(), query], museum_store)
        assert results[0] is results[2]
        assert results[0] == run_query(query, museum_store)

    def test_empty_batch(self, museum_store):
        assert run_query_batch([], museum_store) == []

    def test_tuple_at_a_time_stays_independent_but_agrees(self, museum_store):
        queries = [_chain(), _chain_typed()]
        expected = [run_query(query, museum_store) for query in queries]
        assert (
            run_query_batch(queries, museum_store, batch_size=None) == expected
        )

    def test_decode_images_mixes_codes_and_constants(self, museum_store):
        code = museum_store.encode_term(ex("vanGogh"))
        images = {(code, ex("moma"))}
        assert decode_images(images, museum_store) == {
            (ex("vanGogh"), ex("moma"))
        }

    def test_each_distinct_code_decoded_once(self, museum_store, monkeypatch):
        disjuncts = [_chain(), _chain_renamed()]
        expected = _union_reference(disjuncts, museum_store)
        calls = []
        original = museum_store.dictionary.decode

        def counting(code):
            calls.append(code)
            return original(code)

        monkeypatch.setattr(museum_store.dictionary, "decode", counting)
        assert evaluate_union_shared(disjuncts, museum_store) == expected
        assert len(calls) == len(set(calls))


class TestUnionPushdown:
    def test_single_statement_with_shared_cte(self, sqlite_museum):
        disjuncts = [_chain(), _chain_typed()]
        compiled = plan_union_pushdown(disjuncts, sqlite_museum)
        assert compiled is not None
        assert compiled.sql.startswith("WITH s0 AS (")
        assert "\nUNION\n" in compiled.sql
        assert compiled.branches == 2
        assert compiled.shared_ctes == 1
        assert compiled.execute(sqlite_museum) == _union_reference(
            disjuncts, sqlite_museum
        )

    def test_describe_inlines_the_codes(self, sqlite_museum):
        compiled = plan_union_pushdown(
            [_chain(), _chain_typed()], sqlite_museum
        )
        assert "?" not in compiled.describe()

    def test_memory_backend_has_no_union_pushdown(self, museum_store):
        assert plan_union_pushdown([_chain(), _chain_typed()], museum_store) is None

    def test_union_plan_is_cached(self, sqlite_museum):
        disjuncts = [_chain(), _chain_typed()]
        first = plan_union_pushdown(disjuncts, sqlite_museum)
        assert first is not None
        assert plan_union_pushdown(disjuncts, sqlite_museum) is first

    def test_cache_is_shared_across_variable_renamings(self, sqlite_museum):
        first = plan_union_pushdown([_chain()], sqlite_museum)
        assert first is not None
        assert plan_union_pushdown([_chain_renamed()], sqlite_museum) is first

    def test_signature_ignores_order_and_duplicates(self):
        a = union_signature([_chain(), _chain_typed()])
        b = union_signature([_chain_typed(), _chain_renamed(), _chain()])
        assert a == b
        assert union_signature([_chain()]) != union_signature([_chain_typed()])

    def test_mutation_invalidates_union_plans(self, sqlite_museum):
        disjuncts = [_chain(), _chain_typed()]
        first = plan_union_pushdown(disjuncts, sqlite_museum)
        sqlite_museum.add(Triple(ex("x"), ex("isParentOf"), ex("y")))
        second = plan_union_pushdown(disjuncts, sqlite_museum)
        assert second is not None and second is not first
        assert second.execute(sqlite_museum) == _union_reference(
            disjuncts, sqlite_museum
        )

    def test_zero_arity_union_is_cached_ineligible(self, sqlite_museum):
        disjuncts = [
            ConjunctiveQuery((), (Atom(X, ex("hasPainted"), Y),), name="ask")
        ]
        assert plan_union_pushdown(disjuncts, sqlite_museum) is None
        assert plan_union_pushdown(disjuncts, sqlite_museum) is None
        # The union still answers through the per-disjunct route.
        assert evaluate_union(disjuncts, sqlite_museum) == {()}

    def test_absent_constant_branch_is_skipped(self, sqlite_museum):
        bad = ConjunctiveQuery(
            (X, Y), (Atom(X, ex("neverSeen"), Y),), name="bad"
        )
        compiled = plan_union_pushdown([_chain(), bad], sqlite_museum)
        assert compiled is not None
        assert compiled.branches == 1
        assert compiled.execute(sqlite_museum) == evaluate_greedy(
            _chain(), sqlite_museum
        )

    def test_all_branches_empty_compiles_to_the_empty_union(self, sqlite_museum):
        bad = ConjunctiveQuery(
            (X, Y), (Atom(X, ex("neverSeen"), Y),), name="bad"
        )
        compiled = plan_union_pushdown([bad], sqlite_museum)
        assert compiled is not None
        assert compiled.sql is None
        assert "EMPTY" in compiled.describe()
        assert compiled.execute(sqlite_museum) == set()

    def test_head_constant_absent_from_store_uses_the_overlay(
        self, sqlite_museum
    ):
        tag = ex("freshTag")
        query = ConjunctiveQuery(
            (X, tag), (Atom(X, ex("hasPainted"), ex("starryNight")),), name="qt"
        )
        compiled = plan_union_pushdown([query], sqlite_museum)
        assert compiled is not None
        assert compiled.overlay  # the tag got a placeholder code
        assert compiled.execute(sqlite_museum) == {(ex("vanGogh"), tag)}

    def test_restricted_variables_pad_with_null(self, sqlite_museum):
        titled = parse_query(
            "qt(X, T) :- t(X, title, T)"
        ).with_non_literal({Variable("T")})
        painted = parse_query("qp(X, Y) :- t(X, hasPainted, Y)")
        compiled = plan_union_pushdown([titled, painted], sqlite_museum)
        assert compiled is not None
        assert "NULL" in compiled.sql
        expected = _union_reference([titled, painted], sqlite_museum)
        assert compiled.execute(sqlite_museum) == expected
        # The restriction really drops the literal title binding.
        assert evaluate_greedy(titled, sqlite_museum) == set()


class TestStatementGate:
    """The profit gate choosing compound vs per-branch execution."""

    def _clear_plans(self, store):
        from repro.engine.planner import _plan_cache_entry

        _plan_cache_entry(store)["plans"].clear()

    def test_selective_union_routes_to_per_branch_statements(
        self, sqlite_museum
    ):
        from repro.engine.mqo import _union_route

        disjuncts = (_chain(), _chain_typed())
        distinct, compound, singles = _union_route(disjuncts, sqlite_museum, 1)
        assert compound is None
        assert singles is not None and all(s is not None for s in singles)
        assert evaluate_union(disjuncts, sqlite_museum) == _union_reference(
            disjuncts, sqlite_museum
        )

    def test_route_decision_is_cached(self, sqlite_museum):
        from repro.engine.mqo import _union_route

        disjuncts = (_chain(), _chain_typed())
        first = _union_route(disjuncts, sqlite_museum, 1)
        assert _union_route(disjuncts, sqlite_museum, 1) is first
        sqlite_museum.add(Triple(ex("x"), ex("isParentOf"), ex("y")))
        assert _union_route(disjuncts, sqlite_museum, 1) is not first

    def test_forced_compound_statement_agrees(self, sqlite_museum, monkeypatch):
        import repro.engine.mqo as mqo

        disjuncts = (_chain(), _chain_typed())
        expected = _union_reference(disjuncts, sqlite_museum)
        monkeypatch.setattr(mqo, "STATEMENT_OVERHEAD_ROWS", 0.0)
        self._clear_plans(sqlite_museum)
        distinct, compound, singles = mqo._union_route(
            disjuncts, sqlite_museum, 1
        )
        assert compound is not None and singles is None
        assert evaluate_union(disjuncts, sqlite_museum) == expected

    def test_gate_inequality_drives_the_decision(self, sqlite_museum):
        from repro.engine.mqo import (
            STATEMENT_OVERHEAD_ROWS,
            _statement_profitable,
        )

        batch = plan_batch((_chain(), _chain_typed()), sqlite_museum)
        savings = sum(
            (node.consumers - 1) * node.est_rows for node in batch.nodes
        )
        assert _statement_profitable(batch) == (
            savings > STATEMENT_OVERHEAD_ROWS * len(batch.plans)
        )


def _empty_prefix_union():
    """Two queries sharing a gated 2-atom prefix with no matches: the
    museum's located-in targets (moma, vienna) are nobody's parent, yet
    both predicates are individually present — the estimator prices the
    node, the ``SELECT EXISTS`` probe finds it empty."""
    return (
        parse_query(
            "q1(X, A) :- t(X, isLocatedIn, Y), t(Y, isParentOf, Z), "
            "t(Z, hasPainted, A)"
        ),
        parse_query(
            "q2(X, Z) :- t(X, isLocatedIn, Y), t(Y, isParentOf, Z), "
            "t(Z, rdf:type, painter)"
        ),
    )


class TestEmptyPrefixPruning:
    """Branches over a probed-empty shared prefix are skipped outright."""

    def test_empty_shared_prefix_prunes_every_consumer(self, sqlite_museum):
        from repro.engine.mqo import _EMPTY_BRANCH, _union_route

        disjuncts = _empty_prefix_union()
        batch = plan_batch(disjuncts, sqlite_museum)
        assert batch.nodes, "the shared prefix must form a gated node"
        _, compound, singles = _union_route(disjuncts, sqlite_museum, 1)
        assert compound is None
        assert all(single is _EMPTY_BRANCH for single in singles)
        assert evaluate_union(disjuncts, sqlite_museum) == set()
        assert evaluate_union(disjuncts, sqlite_museum) == _union_reference(
            disjuncts, sqlite_museum
        )

    def test_nonempty_prefixes_are_never_pruned(self, sqlite_museum):
        from repro.engine.mqo import _EMPTY_BRANCH, _union_route

        disjuncts = (_chain(), _chain_typed())
        _, _, singles = _union_route(disjuncts, sqlite_museum, 1)
        assert all(single is not _EMPTY_BRANCH for single in singles)

    def test_pruning_decision_invalidates_on_mutation(self, sqlite_museum):
        from repro.engine.mqo import _EMPTY_BRANCH, _union_route

        disjuncts = _empty_prefix_union()
        assert evaluate_union(disjuncts, sqlite_museum) == set()
        # Making vienna a parent of a painter fills the probed prefix:
        # the flushed route must re-probe and execute the branches.
        sqlite_museum.add(Triple(ex("vienna"), ex("isParentOf"), ex("bruegelJr")))
        _, _, singles = _union_route(disjuncts, sqlite_museum, 1)
        assert all(single is not _EMPTY_BRANCH for single in singles)
        expected = _union_reference(disjuncts, sqlite_museum)
        assert expected
        assert evaluate_union(disjuncts, sqlite_museum) == expected

    def test_describe_reports_pruned_branches(self, sqlite_museum):
        line = describe_union_sharing(_empty_prefix_union(), sqlite_museum)
        assert "2 branches pruned empty" in line


class TestDescribeUnionSharing:
    def test_interpreted_summary(self, museum_store):
        line = describe_union_sharing(
            [_chain(), _chain_renamed(), _chain()], museum_store
        )
        assert "3 disjuncts (2 distinct)" in line
        assert "1 shared subplans covering 2 disjuncts" in line
        assert "pushdown union" not in line

    def test_pushdown_summary(self, sqlite_museum):
        line = describe_union_sharing(
            [_chain(), _chain_typed()], sqlite_museum
        )
        assert "pushdown union: 2 branches, 1 shared CTEs" in line
        assert "route: per-branch statements" in line

    def test_describe_reports_compound_route_when_gated_on(
        self, sqlite_museum, monkeypatch
    ):
        import repro.engine.mqo as mqo
        from repro.engine.planner import _plan_cache_entry

        monkeypatch.setattr(mqo, "STATEMENT_OVERHEAD_ROWS", 0.0)
        _plan_cache_entry(sqlite_museum)["plans"].clear()
        line = describe_union_sharing(
            [_chain(), _chain_typed()], sqlite_museum
        )
        assert "route: compound statement" in line
