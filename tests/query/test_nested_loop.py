"""Tests for the scan-based nested-loop evaluator (the benchmark
baseline) — it must agree exactly with the index-backed evaluator."""

from hypothesis import HealthCheck, given, settings

from repro.query.cq import Variable
from repro.query.evaluation import evaluate, evaluate_nested_loop
from repro.query.parser import parse_query

from tests.property import strategies as us


def test_agrees_on_running_example(museum_store, q_painters):
    assert evaluate_nested_loop(q_painters, museum_store) == evaluate(
        q_painters, museum_store
    )


def test_agrees_on_star_query(museum_store):
    query = parse_query(
        "q(X) :- t(X, hasPainted, Y), t(X, isParentOf, Z), t(X, rdf:type, painter)"
    )
    assert evaluate_nested_loop(query, museum_store) == evaluate(query, museum_store)


def test_unknown_constant_yields_empty(museum_store):
    query = parse_query("q(X) :- t(X, neverSeen, Y)")
    assert evaluate_nested_loop(query, museum_store) == set()


def test_respects_non_literal_restriction(museum_store):
    # starryNight's title is a literal; a restricted variable skips it.
    query = parse_query("q(X, Y) :- t(X, title, Y)")
    restricted = query.with_non_literal([Variable("Y")])
    assert evaluate_nested_loop(query, museum_store)  # literal row found
    assert evaluate_nested_loop(restricted, museum_store) == set()
    assert evaluate(restricted, museum_store) == set()


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(store=us.stores(max_size=15), query=us.connected_queries(max_atoms=2))
def test_property_agrees_with_indexed_evaluator(store, query):
    assert evaluate_nested_loop(query, store) == evaluate(query, store)
