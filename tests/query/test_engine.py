"""Unit tests for the physical-operator engine (repro.engine)."""

import pytest

from repro.engine import (
    ENGINES,
    FIXED_ENGINES,
    HYBRID,
    Distinct,
    ExtentScan,
    HashJoin,
    IndexScan,
    MergeJoin,
    ViewExtent,
    choose_engine,
    plan_query,
    plan_rewriting,
    run_plan,
    run_query,
)
from repro.query.algebra import (
    EqualsConstant,
    Join,
    Project,
    Rename,
    Scan,
    Select,
    execute,
)
from repro.query.cq import Atom, ConjunctiveQuery, Variable
from repro.query.evaluation import evaluate, evaluate_greedy
from repro.query.parser import parse_query
from repro.rdf.store import TripleStore
from repro.rdf.terms import Literal, URI
from repro.rdf.triples import Triple
from repro.selection.statistics import FixedStatistics

from tests.conftest import ex

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
A, B, C, D = URI("http://a"), URI("http://b"), URI("http://c"), URI("http://d")


@pytest.fixture(params=ENGINES)
def engine(request):
    return request.param


class TestRunQuery:
    def test_single_atom(self, museum_store, engine):
        query = parse_query("q(X, Y) :- t(X, hasPainted, Y)")
        answers = run_query(query, museum_store, engine=engine)
        assert (ex("vanGogh"), ex("starryNight")) in answers
        assert len(answers) == 6

    def test_join_matches_seed_evaluator(self, museum_store, q_painters, engine):
        assert run_query(q_painters, museum_store, engine=engine) == evaluate_greedy(
            q_painters, museum_store
        )

    def test_chain_join(self, museum_store, engine):
        query = parse_query(
            "q(X, W) :- t(X, isParentOf, Y), t(Y, hasPainted, Z), "
            "t(Z, rdf:type, W)"
        )
        assert run_query(query, museum_store, engine=engine) == evaluate_greedy(
            query, museum_store
        )

    def test_self_join_atom(self, engine):
        store = TripleStore()
        store.add(Triple(ex("a"), ex("p"), ex("a")))
        store.add(Triple(ex("a"), ex("p"), ex("b")))
        query = ConjunctiveQuery((X,), (Atom(X, ex("p"), X),))
        assert run_query(query, store, engine=engine) == {(ex("a"),)}

    def test_cartesian_product(self, museum_store, engine):
        query = parse_query(
            "q(X, Z) :- t(X, hasPainted, starryNight), t(Z, rdf:type, sketch)"
        )
        assert run_query(query, museum_store, engine=engine) == {
            (ex("vanGogh"), ex("sketch1"))
        }

    def test_unknown_constant_yields_empty(self, museum_store, engine):
        query = parse_query("q(X) :- t(X, neverSeenProperty, Y)")
        assert run_query(query, museum_store, engine=engine) == set()

    def test_constant_and_duplicate_head(self, museum_store, engine):
        query = ConjunctiveQuery(
            (X, ex("marker"), X), (Atom(X, ex("hasPainted"), ex("starryNight")),)
        )
        assert run_query(query, museum_store, engine=engine) == {
            (ex("vanGogh"), ex("marker"), ex("vanGogh"))
        }

    def test_boolean_head(self, museum_store, engine):
        query = ConjunctiveQuery((), (Atom(X, ex("hasPainted"), ex("starryNight")),))
        assert run_query(query, museum_store, engine=engine) == {()}

    def test_non_literal_restriction(self, museum_store, engine):
        # starryNight has both a URI-valued and a literal-valued property;
        # restricting Y must drop the literal binding.
        unrestricted = ConjunctiveQuery((Y,), (Atom(ex("starryNight"), X, Y),))
        restricted = unrestricted.with_non_literal([Y])
        all_values = run_query(unrestricted, museum_store, engine=engine)
        non_literal = run_query(restricted, museum_store, engine=engine)
        assert (Literal("The Starry Night"),) in all_values
        assert (Literal("The Starry Night"),) not in non_literal
        assert non_literal == {v for v in all_values if not isinstance(v[0], Literal)}

    def test_statistics_provider_is_honored(self, museum_store):
        query = parse_query("q(X, Y) :- t(X, hasPainted, Y), t(X, rdf:type, painter)")
        answers = run_query(
            query, museum_store, engine="auto", statistics=FixedStatistics()
        )
        assert answers == evaluate_greedy(query, museum_store)

    def test_unknown_engine_rejected(self, museum_store):
        query = parse_query("q(X) :- t(X, hasPainted, Y)")
        with pytest.raises(ValueError):
            run_query(query, museum_store, engine="quantum")


class TestPlanQuery:
    def test_schema_covers_all_variables(self, museum_store, q_painters, engine):
        root = plan_query(q_painters, museum_store, engine=engine)
        assert set(root.schema) == {v.name for v in q_painters.variables()}

    def test_explain_renders_tree(self, museum_store, q_painters):
        rendered = plan_query(q_painters, museum_store).explain()
        assert "IndexScan" in rendered

    def test_merge_plan_uses_sorted_leaves(self, museum_store):
        query = parse_query("q(X, Z) :- t(X, isParentOf, Y), t(Y, hasPainted, Z)")
        root = plan_query(query, museum_store, engine="merge")
        assert isinstance(root, MergeJoin)
        leaves = [root.left, root.right]
        assert all(isinstance(leaf, IndexScan) for leaf in leaves)
        assert all(leaf.sorted_on == ("Y",) for leaf in leaves)


class TestOperators:
    def test_index_scan_columns_in_spo_order(self, museum_store):
        scan = IndexScan(museum_store, Atom(X, ex("hasPainted"), Y))
        assert scan.schema == ("X", "Y")
        assert len(scan.rows()) == 6

    def test_hash_join_uses_prebuilt_extent_index(self):
        extent = ViewExtent([(A, B), (A, C), (B, C)])
        left = ExtentScan("l", extent, ("x", "y"))
        right = ExtentScan("r", extent, ("y", "z"))
        join = HashJoin(left, right, pairs=[(1, 0)], keep_right=[1])
        assert set(join) == {(A, B, C)}
        # The extent cached the index the join asked for.
        assert (0,) in extent._indexes

    def test_merge_join_on_terms(self):
        left = ExtentScan("l", [(A, B), (B, C)], ("x", "y"))
        right = ExtentScan("r", [(B, D), (C, A)], ("y", "z"))
        join = MergeJoin(left, right, pairs=[(1, 0)], keep_right=[1],
                         value_key=lambda term: term.n3())
        assert set(join) == {(A, B, D), (B, C, A)}

    def test_distinct_preserves_first_occurrence_order(self):
        child = ExtentScan("v", [(A,), (B,), (A,), (B,)], ("x",))
        assert Distinct(child).rows() == [(A,), (B,)]


class TestPlanRewriting:
    EXTENTS = {"v1": [(A, B), (A, C), (B, C)], "v2": [(B, D), (C, A)]}

    def test_execute_matches_engine_default(self):
        plan = Project(
            Select(
                Join(Scan("v1", ("x", "y")), Scan("v2", ("y", "z"))),
                (EqualsConstant("x", A),),
            ),
            ("z",),
        )
        assert execute(plan, self.EXTENTS) == run_plan(plan, self.EXTENTS)

    def test_all_engines_agree_on_row_sets(self, engine):
        plan = Join(Scan("v1", ("x", "y")), Scan("v2", ("y", "z")))
        rows = run_plan(plan, self.EXTENTS, engine=engine)
        assert set(rows) == {(A, B, D), (A, C, A), (B, C, A)}

    def test_rename_relabels_schema(self):
        plan = Rename(Scan("v1", ("x", "y")), ("a", "b"))
        root = plan_rewriting(plan, self.EXTENTS)
        assert root.schema == ("a", "b")
        assert root.rows() == self.EXTENTS["v1"]

    def test_missing_extent_raises_keyerror(self):
        with pytest.raises(KeyError, match="no extent provided"):
            run_plan(Scan("zzz", ("x",)), self.EXTENTS)


class TestViewExtent:
    def test_behaves_like_a_list(self):
        extent = ViewExtent([(A,), (B,)])
        assert extent == [(A,), (B,)]
        assert len(extent) == 2

    def test_index_is_cached(self):
        extent = ViewExtent([(A, B), (A, C)])
        first = extent.index_on((0,))
        second = extent.index_on((0,))
        assert first is second
        assert first[(A,)] == [(A, B), (A, C)]

    def test_empty_key_groups_all_rows(self):
        extent = ViewExtent([(A,), (B,)])
        assert extent.index_on(())[()] == [(A,), (B,)]


class TestPlanCache:
    def test_plans_are_reused_until_mutation(self):
        store = TripleStore()
        store.add(Triple(ex("a"), ex("p"), ex("b")))
        query = parse_query("q(X, Y) :- t(X, p, Y)")
        first = plan_query(query, store)
        assert plan_query(query, store) is first
        store.add(Triple(ex("b"), ex("p"), ex("c")))
        assert plan_query(query, store) is not first

    def test_cache_does_not_miss_new_constants(self):
        # A constant absent at first compile must be seen after insertion.
        store = TripleStore()
        store.add(Triple(ex("a"), ex("p"), ex("b")))
        query = parse_query("q(X) :- t(X, later, Y)")
        assert run_query(query, store) == set()
        store.add(Triple(ex("a"), ex("later"), ex("b")))
        assert run_query(query, store) == {(ex("a"),)}

    def test_statistics_bypass_the_cache(self, museum_store):
        query = parse_query("q(X) :- t(X, hasPainted, Y)")
        baseline = plan_query(query, museum_store)
        with_stats = plan_query(query, museum_store, statistics=FixedStatistics())
        assert with_stats is not baseline


class TestCostBasedSelection:
    """engine="auto" resolves to the cheapest fixed strategy per query."""

    def test_choice_is_a_fixed_engine(self, museum_store, q_painters):
        assert choose_engine(q_painters, museum_store) in FIXED_ENGINES

    def test_connected_join_prefers_index_probes(self, museum_store):
        query = parse_query(
            "q(X, W) :- t(X, isParentOf, Y), t(Y, hasPainted, Z), "
            "t(Z, rdf:type, W)"
        )
        assert choose_engine(query, museum_store) == "index-nested-loop"

    def test_cartesian_product_avoids_per_row_rescans(self, museum_store):
        query = parse_query("q(X, Z) :- t(X, hasPainted, Y), t(Z, rdf:type, W)")
        assert choose_engine(query, museum_store) != "index-nested-loop"

    def test_mixed_query_selects_hybrid(self):
        # A selective connected prefix (where index probes win) feeding a
        # Cartesian step over enough rows that per-row rescans lose to one
        # hash build: the hybrid plan prices below every pure strategy.
        store = TripleStore()
        store.add(Triple(ex("s0"), ex("p"), ex("c")))
        for i in range(10):
            for j in range(10):
                store.add(Triple(ex(f"s{i}"), ex("q"), ex(f"o{j}")))
        for k in range(20):
            store.add(Triple(ex(f"u{k}"), ex("r"), ex(f"w{k}")))
        query = parse_query(
            "q(X, Y, Z) :- t(X, p, c), t(X, q, Y), t(Z, r, W)"
        )
        assert choose_engine(query, store) == HYBRID
        auto_answers = run_query(query, store, engine="auto")
        assert len(auto_answers) == 200  # 10 paintings x 20 Cartesian rows
        for fixed in FIXED_ENGINES:
            assert run_query(query, store, engine=fixed) == auto_answers

    def test_choice_cached_until_mutation(self, museum_store):
        query = parse_query("q(X, Z) :- t(X, hasPainted, Y), t(Y, rdf:type, Z)")
        choice = choose_engine(query, museum_store)
        entry = museum_store._engine_plan_cache
        assert entry["choices"][query] == choice
        # The auto plan itself lands in the prepared-plan cache too.
        root = plan_query(query, museum_store, engine="auto")
        assert plan_query(query, museum_store, engine="auto") is root

    def test_mutation_flushes_choice(self):
        store = TripleStore()
        store.add(Triple(ex("a"), ex("p"), ex("b")))
        query = parse_query("q(X, Z) :- t(X, p, Y), t(Y, p, Z)")
        choose_engine(query, store)
        stale_entry = store._engine_plan_cache
        store.add(Triple(ex("b"), ex("p"), ex("c")))
        # The next lookup re-derives the choice from fresh statistics
        # in a fresh cache entry (the stale one is discarded wholesale).
        assert choose_engine(query, store) in FIXED_ENGINES
        assert store._engine_plan_cache is not stale_entry
        assert store._engine_plan_cache["version"] == store.version

    def test_explicit_statistics_drive_the_choice(self, museum_store, q_painters):
        choice = choose_engine(q_painters, museum_store, statistics=FixedStatistics())
        assert choice in FIXED_ENGINES

    def test_auto_matches_every_fixed_engine_answer(self, museum_store):
        queries = [
            parse_query("q(X, Z) :- t(X, hasPainted, Y), t(Y, rdf:type, Z)"),
            parse_query("q(X, Z) :- t(X, hasPainted, Y), t(Z, rdf:type, sketch)"),
            parse_query("q(X) :- t(X, hasPainted, starryNight)"),
        ]
        for query in queries:
            expected = run_query(query, museum_store, engine="auto")
            for fixed in FIXED_ENGINES:
                assert run_query(query, museum_store, engine=fixed) == expected

    def test_single_atom_query_selects_deterministically(self, museum_store):
        query = parse_query("q(X) :- t(X, hasPainted, Y)")
        assert choose_engine(query, museum_store) == FIXED_ENGINES[0]

    def test_empty_store_selection_is_safe(self):
        query = parse_query("q(X, Z) :- t(X, p, Y), t(Y, q, Z)")
        store = TripleStore()
        assert choose_engine(query, store) in FIXED_ENGINES
        assert run_query(query, store, engine="auto") == set()


def test_evaluate_delegates_to_engine(museum_store, q_painters):
    for engine_name in ENGINES:
        assert evaluate(q_painters, museum_store, engine=engine_name) == {
            (ex("vanGogh"), ex("sketch1"))
        }
