"""Unit tests of the columnar batch layout and its engine plumbing:
:class:`ColumnBatch` operations (including the zero-width boolean-head
case that breaks naive ``zip`` transposes), the planner's adaptive
batch sizing, and the morsel scan primitive."""

import pytest

from repro.engine.columnar import ColumnBatch, concat_batches, rows_to_columns
from repro.engine.operators import ADAPTIVE_BATCH_SIZE, DEFAULT_BATCH_SIZE
from repro.engine.parallel import scan_morsel
from repro.engine.planner import (
    _ADAPTIVE_MAX_BATCH,
    _ADAPTIVE_MIN_BATCH,
    _adaptive_batch_size,
    _check_batch_size,
)


class TestColumnBatch:
    def test_from_rows_round_trips(self):
        rows = [(1, "a"), (2, "b"), (3, "c")]
        batch = ColumnBatch.from_rows(rows, 2)
        assert batch.columns == ((1, 2, 3), ("a", "b", "c"))
        assert len(batch) == 3
        assert batch.rows() == rows
        assert list(batch) == rows
        assert batch.row(1) == (2, "b")

    def test_zero_width_batches_keep_their_length(self):
        """Boolean heads produce zero-column rows; the explicit length
        is what survives where ``zip(*columns)`` would collapse."""
        batch = ColumnBatch.from_rows([(), (), ()], 0)
        assert batch.columns == ()
        assert len(batch) == 3
        assert batch.rows() == [(), (), ()]
        assert list(batch) == [(), (), ()]

    def test_project_is_zero_copy(self):
        batch = ColumnBatch.from_rows([(1, 10, 100), (2, 20, 200)], 3)
        projected = batch.project((2, 0))
        assert projected.rows() == [(100, 1), (200, 2)]
        assert projected.columns[0] is batch.columns[2]
        assert projected.columns[1] is batch.columns[0]
        assert len(projected) == 2

    def test_take_applies_a_selection_vector(self):
        batch = ColumnBatch.from_rows([(1, 10), (2, 20), (3, 30)], 2)
        taken = batch.take([2, 0])
        assert taken.rows() == [(3, 30), (1, 10)]
        assert len(taken) == 2

    def test_from_columns_derives_length(self):
        batch = ColumnBatch.from_columns([(1, 2), (10, 20)], 2)
        assert len(batch) == 2
        with pytest.raises(ValueError):
            ColumnBatch.from_columns([], 0)

    def test_rows_to_columns_alias(self):
        assert rows_to_columns([(5,)], 1).columns == ((5,),)

    def test_concat_batches(self):
        one = ColumnBatch.from_rows([(1, 10)], 2)
        two = ColumnBatch.from_rows([(2, 20), (3, 30)], 2)
        merged = concat_batches([one, two], 2)
        assert merged.rows() == [(1, 10), (2, 20), (3, 30)]
        # Single non-empty input comes back as-is; all-empty is None.
        assert concat_batches([one, ColumnBatch((), 0)], 2) is one
        assert concat_batches([], 2) is None
        zero = concat_batches(
            [ColumnBatch((), 2), ColumnBatch((), 1)], 0
        )
        assert len(zero) == 3 and zero.columns == ()


class TestAdaptiveSizing:
    def test_power_of_two_clamped(self):
        assert _adaptive_batch_size(0) == _ADAPTIVE_MIN_BATCH
        assert _adaptive_batch_size(63) == _ADAPTIVE_MIN_BATCH
        assert _adaptive_batch_size(65) == 128
        assert _adaptive_batch_size(1000) == 1024
        assert _adaptive_batch_size(10**9) == _ADAPTIVE_MAX_BATCH

    def test_check_batch_size_accepts_the_sentinel(self):
        assert _check_batch_size(ADAPTIVE_BATCH_SIZE) == ADAPTIVE_BATCH_SIZE
        assert _check_batch_size(0) is None
        assert _check_batch_size(None) is None
        assert _check_batch_size(512) == 512
        with pytest.raises(ValueError):
            _check_batch_size("vectorized")
        with pytest.raises(ValueError):
            _check_batch_size(-1)

    def test_default_batch_size_is_in_adaptive_range(self):
        assert _ADAPTIVE_MIN_BATCH <= DEFAULT_BATCH_SIZE <= _ADAPTIVE_MAX_BATCH


class TestScanMorsel:
    def test_projects_and_filters(self):
        morsel = [(1, 5, 1), (2, 5, 3), (4, 5, 4)]
        # No eq constraints: plain projection.
        assert scan_morsel(morsel, (0, 2), ()) == [(1, 1), (2, 3), (4, 4)]
        # s == o constraint keeps only the self-loops.
        assert scan_morsel(morsel, (0, 2), ((0, 2),)) == [(1, 1), (4, 4)]
        # Single output column still yields 1-tuples.
        assert scan_morsel(morsel, (1,), ()) == [(5,), (5,), (5,)]
        # Zero output columns: one empty tuple per surviving triple.
        assert scan_morsel(morsel, (), ((0, 2),)) == [(), ()]
