"""Unit tests for the conjunctive-query model."""

import pytest

from repro.query.cq import (
    Atom,
    ConjunctiveQuery,
    UnionQuery,
    Variable,
    fresh_variable,
)
from repro.rdf.terms import URI

X, Y, Z, W = Variable("X"), Variable("Y"), Variable("Z"), Variable("W")
P = URI("http://p")
Q = URI("http://q")
C = URI("http://c")


class TestAtom:
    def test_terms_and_iteration(self):
        atom = Atom(X, P, C)
        assert atom.terms() == (X, P, C)
        assert list(atom) == [X, P, C]

    def test_term_at(self):
        atom = Atom(X, P, Y)
        assert atom.term_at("s") == X
        assert atom.term_at("p") == P
        assert atom.term_at("o") == Y

    def test_variables_and_constants(self):
        atom = Atom(X, P, C)
        assert atom.variables() == {X}
        assert atom.constants() == {P, C}

    def test_substitute(self):
        atom = Atom(X, P, Y).substitute({X: Z, Y: C})
        assert atom == Atom(Z, P, C)

    def test_replace_at(self):
        assert Atom(X, P, Y).replace_at("o", C) == Atom(X, P, C)

    def test_invalid_term_rejected(self):
        with pytest.raises(TypeError):
            Atom("X", P, Y)  # plain string is not a term


class TestConjunctiveQuery:
    def make_chain(self):
        return ConjunctiveQuery(
            (X, Z), (Atom(X, P, Y), Atom(Y, Q, Z)), name="chain"
        )

    def test_len_counts_atoms(self):
        assert len(self.make_chain()) == 2

    def test_unsafe_head_rejected(self):
        with pytest.raises(ValueError):
            ConjunctiveQuery((W,), (Atom(X, P, Y),))

    def test_empty_body_rejected(self):
        with pytest.raises(ValueError):
            ConjunctiveQuery((), ())

    def test_variable_partition(self):
        query = self.make_chain()
        assert query.variables() == {X, Y, Z}
        assert query.head_variables() == {X, Z}
        assert query.existential_variables() == {Y}

    def test_constants(self):
        query = ConjunctiveQuery((X,), (Atom(X, P, C),))
        assert query.constants() == {P, C}

    def test_constant_occurrences(self):
        query = ConjunctiveQuery((X,), (Atom(X, P, C), Atom(X, P, Y)))
        occurrences = query.constant_occurrences()
        assert (0, "p", P) in occurrences
        assert (0, "o", C) in occurrences
        assert (1, "p", P) in occurrences
        assert len(occurrences) == 3

    def test_join_graph_edges(self):
        query = self.make_chain()
        assert query.join_graph_edges() == [(0, "o", 1, "s")]

    def test_join_edges_multi(self):
        # Two atoms sharing X twice: s=s and s=o.
        query = ConjunctiveQuery((X,), (Atom(X, P, Y), Atom(X, Q, X)))
        edges = query.join_graph_edges()
        assert (0, "s", 1, "s") in edges
        assert (0, "s", 1, "o") in edges

    def test_connectivity(self):
        assert self.make_chain().is_connected()
        cartesian = ConjunctiveQuery((X, Z), (Atom(X, P, Y), Atom(Z, Q, W)))
        assert not cartesian.is_connected()
        assert len(cartesian.connected_components()) == 2

    def test_single_atom_is_connected(self):
        assert ConjunctiveQuery((X,), (Atom(X, P, Y),)).is_connected()

    def test_substitute_hits_head_and_body(self):
        query = self.make_chain().substitute({X: W})
        assert query.head == (W, Z)
        assert query.atoms[0] == Atom(W, P, Y)

    def test_replace_atom(self):
        query = self.make_chain().replace_atom(0, Atom(X, Q, Y))
        assert query.atoms[0] == Atom(X, Q, Y)
        assert query.atoms[1] == Atom(Y, Q, Z)

    def test_name_does_not_affect_equality(self):
        q1 = self.make_chain()
        q2 = q1.with_name("other")
        assert q1 == q2

    def test_rename_apart(self):
        query = self.make_chain()
        renamed = query.rename_apart({X, Y})
        assert renamed.variables().isdisjoint({X, Y}) or Z in renamed.variables()
        assert X not in renamed.variables()
        assert Y not in renamed.variables()

    def test_head_constants_allowed(self):
        query = ConjunctiveQuery((X, C), (Atom(X, P, C),))
        assert query.head == (X, C)


class TestUnionQuery:
    def test_arity_must_agree(self):
        q1 = ConjunctiveQuery((X,), (Atom(X, P, Y),))
        q2 = ConjunctiveQuery((X, Y), (Atom(X, P, Y),))
        with pytest.raises(ValueError):
            UnionQuery((q1, q2))

    def test_counters(self):
        q1 = ConjunctiveQuery((X,), (Atom(X, P, C),))
        q2 = ConjunctiveQuery((Y,), (Atom(Y, P, C), Atom(Y, Q, Z)))
        union = UnionQuery((q1, q2))
        assert len(union) == 2
        assert union.arity == 1
        assert union.total_atoms() == 3
        assert union.total_constants() == 5

    def test_empty_union_rejected(self):
        with pytest.raises(ValueError):
            UnionQuery(())


def test_fresh_variables_never_repeat():
    names = {fresh_variable().name for _ in range(100)}
    assert len(names) == 100
