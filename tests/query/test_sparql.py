"""Unit tests for the SPARQL BGP parser."""

import pytest

from repro.query.cq import Variable
from repro.query.sparql import SparqlSyntaxError, parse_sparql_bgp
from repro.rdf.terms import Literal, URI
from repro.rdf.vocabulary import RDF_TYPE


def test_basic_select():
    query = parse_sparql_bgp(
        """
        PREFIX ex: <http://example.org/>
        SELECT ?painter ?work WHERE {
            ?painter ex:hasPainted ?work .
            ?work ex:isLocatedIn ex:moma .
        }
        """
    )
    assert query.head == (Variable("painter"), Variable("work"))
    assert len(query) == 2
    assert query.atoms[1].o == URI("http://example.org/moma")


def test_a_keyword_is_rdf_type():
    query = parse_sparql_bgp(
        "PREFIX ex: <http://e/> SELECT ?x WHERE { ?x a ex:painter . }"
    )
    assert query.atoms[0].p == RDF_TYPE


def test_star_selects_all_variables_in_order():
    query = parse_sparql_bgp(
        "PREFIX ex: <http://e/> SELECT * WHERE { ?a ex:p ?b . ?b ex:q ?c . }"
    )
    assert query.head == (Variable("a"), Variable("b"), Variable("c"))


def test_literal_object():
    query = parse_sparql_bgp(
        'PREFIX ex: <http://e/> SELECT ?x WHERE { ?x ex:title "Mona Lisa" . }'
    )
    assert query.atoms[0].o == Literal("Mona Lisa")


def test_blank_node_is_existential_variable():
    query = parse_sparql_bgp(
        "PREFIX ex: <http://e/> SELECT ?x WHERE { ?x ex:p _:b . _:b ex:q ?y . }"
    )
    assert query.atoms[0].o == query.atoms[1].s
    assert query.atoms[0].o not in query.head


def test_full_uris_without_prefix():
    query = parse_sparql_bgp(
        "SELECT ?x WHERE { ?x <http://e/p> <http://e/c> . }"
    )
    assert query.atoms[0].p == URI("http://e/p")


def test_rdf_prefix_is_predeclared():
    query = parse_sparql_bgp("SELECT ?x WHERE { ?x rdf:type ?c . }")
    assert query.atoms[0].p == RDF_TYPE


def test_undeclared_prefix_rejected():
    with pytest.raises(SparqlSyntaxError):
        parse_sparql_bgp("SELECT ?x WHERE { ?x nope:p ?y . }")


def test_empty_pattern_rejected():
    with pytest.raises(SparqlSyntaxError):
        parse_sparql_bgp("SELECT ?x WHERE { }")


def test_missing_where_rejected():
    with pytest.raises(SparqlSyntaxError):
        parse_sparql_bgp("SELECT ?x FROM somewhere")


def test_malformed_pattern_rejected():
    with pytest.raises(SparqlSyntaxError):
        parse_sparql_bgp("SELECT ?x WHERE { ?x ?p . }")


def test_agrees_with_datalog_parser(museum_store):
    from repro.query.evaluation import evaluate
    from repro.query.parser import parse_query

    sparql = parse_sparql_bgp(
        """
        PREFIX ex: <http://example.org/>
        SELECT ?x ?z WHERE {
            ?x ex:hasPainted ex:starryNight .
            ?x ex:isParentOf ?y .
            ?y ex:hasPainted ?z .
        }
        """
    )
    datalog = parse_query(
        "q1(X, Z) :- t(X, hasPainted, starryNight), t(X, isParentOf, Y), "
        "t(Y, hasPainted, Z)"
    )
    assert evaluate(sparql, museum_store) == evaluate(datalog, museum_store)
