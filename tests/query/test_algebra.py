"""Unit tests for rewriting plans: construction, substitution, execution."""

import pytest

from repro.query.algebra import (
    EqualsColumn,
    EqualsConstant,
    Join,
    Project,
    Rename,
    Scan,
    Select,
    execute,
    iter_nodes,
    replace_scan,
    rename_scan,
    scans,
    view_names,
)
from repro.rdf.terms import URI

A, B, C, D = URI("http://a"), URI("http://b"), URI("http://c"), URI("http://d")

V1_ROWS = [(A, B), (A, C), (B, C)]
V2_ROWS = [(B, D), (C, A)]
EXTENTS = {"v1": V1_ROWS, "v2": V2_ROWS}


class TestConstruction:
    def test_scan_schema(self):
        scan = Scan("v1", ("x", "y"))
        assert scan.schema == ("x", "y")

    def test_scan_duplicate_columns_rejected(self):
        with pytest.raises(ValueError):
            Scan("v1", ("x", "x"))

    def test_select_preserves_schema(self):
        plan = Select(Scan("v1", ("x", "y")), (EqualsConstant("x", A),))
        assert plan.schema == ("x", "y")

    def test_project_schema_and_validation(self):
        plan = Project(Scan("v1", ("x", "y")), ("y",))
        assert plan.schema == ("y",)
        with pytest.raises(ValueError):
            Project(Scan("v1", ("x", "y")), ("z",))

    def test_join_schema_dedups_shared(self):
        left = Scan("v1", ("x", "y"))
        right = Scan("v2", ("y", "z"))
        join = Join(left, right)
        assert join.schema == ("x", "y", "z")
        assert join.natural_pairs == (("y", "y"),)

    def test_join_explicit_pairs_validated(self):
        left = Scan("v1", ("x", "y"))
        right = Scan("v2", ("u", "z"))
        Join(left, right, pairs=(("y", "u"),))
        with pytest.raises(ValueError):
            Join(left, right, pairs=(("nope", "u"),))

    def test_rename_arity_checked(self):
        with pytest.raises(ValueError):
            Rename(Scan("v1", ("x", "y")), ("a",))


class TestTraversal:
    def make_plan(self):
        left = Scan("v1", ("x", "y"))
        right = Scan("v2", ("y", "z"))
        return Project(Select(Join(left, right), (EqualsConstant("x", A),)), ("x", "z"))

    def test_iter_nodes_children_first(self):
        kinds = [type(node).__name__ for node in iter_nodes(self.make_plan())]
        assert kinds == ["Scan", "Scan", "Join", "Select", "Project"]

    def test_scans_and_view_names(self):
        plan = self.make_plan()
        assert [s.view for s in scans(plan)] == ["v1", "v2"]
        assert view_names(plan) == {"v1", "v2"}


class TestSubstitution:
    def test_replace_scan_schema_must_match(self):
        plan = Scan("v1", ("x", "y"))
        replacement = Project(Scan("v9", ("x", "y", "w")), ("x", "y"))
        replaced = replace_scan(plan, "v1", replacement)
        assert view_names(replaced) == {"v9"}
        with pytest.raises(ValueError):
            replace_scan(plan, "v1", Scan("v9", ("x",)))

    def test_replace_scan_deep(self):
        plan = Project(
            Join(Scan("v1", ("x", "y")), Scan("v2", ("y", "z"))), ("x", "z")
        )
        replacement = Project(Scan("v3", ("y", "z", "k")), ("y", "z"))
        replaced = replace_scan(plan, "v2", replacement)
        assert view_names(replaced) == {"v1", "v3"}
        assert replaced.schema == plan.schema

    def test_replace_scan_no_match_returns_same_object(self):
        plan = Project(Scan("v1", ("x", "y")), ("x",))
        assert replace_scan(plan, "nope", Scan("v9", ("x", "y"))) is plan

    def test_rename_scan(self):
        plan = Join(Scan("v1", ("x", "y")), Scan("v2", ("y", "z")))
        renamed = rename_scan(plan, "v2", "v7")
        assert view_names(renamed) == {"v1", "v7"}


class TestExecution:
    def test_scan(self):
        assert execute(Scan("v1", ("x", "y")), EXTENTS) == V1_ROWS

    def test_missing_extent_raises(self):
        with pytest.raises(KeyError):
            execute(Scan("zzz", ("x",)), EXTENTS)

    def test_select_constant(self):
        plan = Select(Scan("v1", ("x", "y")), (EqualsConstant("x", A),))
        assert execute(plan, EXTENTS) == [(A, B), (A, C)]

    def test_select_column_equality(self):
        extents = {"v": [(A, A), (A, B)]}
        plan = Select(Scan("v", ("x", "y")), (EqualsColumn("x", "y"),))
        assert execute(plan, extents) == [(A, A)]

    def test_project_dedups(self):
        plan = Project(Scan("v1", ("x", "y")), ("x",))
        assert execute(plan, EXTENTS) == [(A,), (B,)]

    def test_natural_join(self):
        plan = Join(Scan("v1", ("x", "y")), Scan("v2", ("y", "z")))
        rows = execute(plan, EXTENTS)
        assert set(rows) == {(A, B, D), (A, C, A), (B, C, A)}

    def test_explicit_pair_join(self):
        left = Scan("v1", ("x", "y"))
        right = Scan("v2", ("u", "z"))
        plan = Join(left, right, pairs=(("y", "u"),))
        rows = execute(plan, EXTENTS)
        assert set(rows) == {(A, B, B, D), (A, C, C, A), (B, C, C, A)}

    def test_rename_is_identity_on_rows(self):
        plan = Rename(Scan("v1", ("x", "y")), ("a", "b"))
        assert execute(plan, EXTENTS) == V1_ROWS
        assert plan.schema == ("a", "b")

    def test_full_pipeline(self):
        # π_z(σ_x=A(v1 ⋈ v2)) over shared column y.
        join = Join(Scan("v1", ("x", "y")), Scan("v2", ("y", "z")))
        plan = Project(Select(join, (EqualsConstant("x", A),)), ("z",))
        assert set(execute(plan, EXTENTS)) == {(D,), (A,)}
